//! BGP propagation-engine benchmarks: the inner loop every experiment
//! pays for once per announcement configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use trackdown_bgp::{BgpEngine, EngineConfig, LinkAnnouncement, LinkId, OriginAs};
use trackdown_topology::gen::{generate, TopologyConfig};
use trackdown_topology::Asn;

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("propagation");
    for (label, cfg, pops) in [
        ("small-120as", TopologyConfig::small(1), 4usize),
        ("medium-600as", TopologyConfig::medium(1), 5),
        (
            "full-2000as",
            TopologyConfig {
                seed: 1,
                ..TopologyConfig::default()
            },
            7,
        ),
    ] {
        let world = generate(&cfg);
        let origin = OriginAs::peering_style(&world, pops);
        let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
        let anycast: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        group.bench_with_input(BenchmarkId::new("anycast_all_links", label), &(), |b, _| {
            b.iter(|| {
                let out = engine
                    .propagate_config(&origin, black_box(&anycast), 200)
                    .unwrap();
                black_box(out.reachable_count())
            })
        });
        // Poisoned announcement (extra path work + withdraw handling).
        let targets = trackdown_core::generator::poison_targets(&world.topology, &origin);
        let poison_asn = targets.first().map(|t| t.target).unwrap_or(Asn(9999));
        let poisoned: Vec<LinkAnnouncement> = origin
            .link_ids()
            .map(|l| {
                if l == LinkId(0) {
                    LinkAnnouncement::poisoned(l, vec![poison_asn])
                } else {
                    LinkAnnouncement::plain(l)
                }
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("poisoned", label), &(), |b, _| {
            b.iter(|| {
                let out = engine
                    .propagate_config(&origin, black_box(&poisoned), 200)
                    .unwrap();
                black_box(out.reachable_count())
            })
        });
    }
    group.finish();
}

// Warm-start epoch transitions: one persistent session alternating between
// two configurations, against the cold-start cost of the same pair. The
// warm path only reprocesses the routes the edit actually disturbs.
fn bench_warm_epochs(c: &mut Criterion) {
    let world = generate(&TopologyConfig::medium(1));
    let origin = OriginAs::peering_style(&world, 5);
    // Violator-free: epoch reuse disengages on violator engines (their
    // stable states are history-dependent), which would turn the "warm"
    // bench into a second cold bench.
    let cfg = EngineConfig {
        policy: trackdown_bgp::PolicyConfig {
            violator_fraction: 0.0,
            ..trackdown_bgp::PolicyConfig::default()
        },
        ..EngineConfig::default()
    };
    let engine = BgpEngine::new(&world.topology, &cfg);
    let anycast: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
    let targets = trackdown_core::generator::poison_targets(&world.topology, &origin);
    let poison_asn = targets.first().map(|t| t.target).unwrap_or(Asn(9999));
    let poisoned: Vec<LinkAnnouncement> = origin
        .link_ids()
        .map(|l| {
            if l == LinkId(0) {
                LinkAnnouncement::poisoned(l, vec![poison_asn])
            } else {
                LinkAnnouncement::plain(l)
            }
        })
        .collect();
    c.bench_function("epoch_transition_warm_medium", |b| {
        let mut session = engine.session();
        session.deploy_config(&origin, &anycast, 200).unwrap();
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let cfg = if flip { &poisoned } else { &anycast };
            let out = session.deploy_config(&origin, black_box(cfg), 200).unwrap();
            black_box(out.reachable_count())
        })
    });
    c.bench_function("epoch_transition_cold_medium", |b| {
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            let cfg = if flip { &poisoned } else { &anycast };
            let out = engine
                .propagate_config(&origin, black_box(cfg), 200)
                .unwrap();
            black_box(out.reachable_count())
        })
    });
}

// Interned-arena propagation core: catchment-only snapshots against full
// snapshots (candidate RIBs + path store), and the steady-state warm loop
// where the session's arena is reused across epochs without truncation.
fn bench_propagate_path_arena(c: &mut Criterion) {
    use trackdown_bgp::SnapshotDetail;
    let mut group = c.benchmark_group("propagate_path_arena");
    let world = generate(&TopologyConfig::medium(1));
    let origin = OriginAs::peering_style(&world, 5);
    let cfg = EngineConfig {
        policy: trackdown_bgp::PolicyConfig {
            violator_fraction: 0.0,
            ..trackdown_bgp::PolicyConfig::default()
        },
        ..EngineConfig::default()
    };
    let engine = BgpEngine::new(&world.topology, &cfg);
    let anycast: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
    group.bench_function("cold_catchments_medium", |b| {
        b.iter(|| {
            let out = engine
                .propagate_config_detailed(
                    &origin,
                    black_box(&anycast),
                    200,
                    SnapshotDetail::Catchments,
                )
                .unwrap();
            black_box(out.reachable_count())
        })
    });
    group.bench_function("cold_full_medium", |b| {
        b.iter(|| {
            let out = engine
                .propagate_config_detailed(&origin, black_box(&anycast), 200, SnapshotDetail::Full)
                .unwrap();
            black_box(out.reachable_count())
        })
    });
    // Steady state: re-deploying an unchanged config through a warm session
    // touches no routes and interns no new paths — the arena high-water
    // mark is reached on the first deploy and never grows.
    group.bench_function("warm_steady_state_medium", |b| {
        let mut session = engine.session();
        session.deploy_config(&origin, &anycast, 200).unwrap();
        b.iter(|| {
            let out = session
                .deploy_config(&origin, black_box(&anycast), 200)
                .unwrap();
            black_box(out.reachable_count())
        })
    });
    group.finish();
}

fn bench_engine_setup(c: &mut Criterion) {
    let world = generate(&TopologyConfig::medium(1));
    c.bench_function("engine_build_medium", |b| {
        b.iter(|| {
            let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
            black_box(engine.policy().num_violators())
        })
    });
}

criterion_group!(
    benches,
    bench_propagation,
    bench_warm_epochs,
    bench_propagate_path_arena,
    bench_engine_setup
);
criterion_main!(benches);
