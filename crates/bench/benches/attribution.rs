//! Attribution-plane benchmarks: indexed/incremental suspect ranking,
//! volume estimation, and cluster lookups vs the scan-based references
//! they replaced, on a large synthetic partition (50k tracked sources —
//! the scale the ROADMAP's production north star assumes, far beyond the
//! 2k-AS simulated topologies).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use trackdown_bgp::{Catchments, LinkId};
use trackdown_core::localize::{
    estimate_cluster_volumes, estimate_cluster_volumes_rescan, link_volume_matrix, rank_suspects,
    rank_suspects_rescan, AttributionIndex, Campaign, CampaignStats,
};
use trackdown_topology::AsIndex;

const SOURCES: usize = 50_000;
const CONFIGS: usize = 24;
const LINKS: usize = 8;
const GROUPS: usize = 2_000;

/// A campaign-shaped fixture over a synthetic partition: sources route in
/// co-routed groups (the shape real campaigns converge to — ~2k clusters
/// of ~25 sources), with a sprinkling of unobserved catchments, a handful
/// of active attackers, and the honeypot volume matrix they induce.
fn synthetic_campaign(seed: u64) -> (Campaign, Vec<Vec<u64>>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let group_of: Vec<usize> = (0..SOURCES).map(|_| rng.random_range(0..GROUPS)).collect();
    let catchments: Vec<Catchments> = (0..CONFIGS)
        .map(|_| {
            let group_link: Vec<Option<LinkId>> = (0..GROUPS)
                .map(|_| {
                    if rng.random_range(0..16u32) == 0 {
                        None
                    } else {
                        Some(LinkId(rng.random_range(0..LINKS as u8)))
                    }
                })
                .collect();
            let mut c = Catchments::unassigned(SOURCES);
            for i in 0..SOURCES {
                c.set(AsIndex(i as u32), group_link[group_of[i]]);
            }
            c
        })
        .collect();
    let tracked: Vec<AsIndex> = (0..SOURCES as u32).map(AsIndex).collect();
    let (clustering, attribution) = AttributionIndex::build(tracked.clone(), &catchments);
    let campaign = Campaign {
        configs: Vec::new(),
        catchments,
        tracked,
        clustering,
        attribution,
        records: Vec::new(),
        imputation: None,
        stats: CampaignStats::default(),
    };
    let mut volume_per_as = vec![0u64; SOURCES];
    for (i, v) in [
        (SOURCES / 7, 1_000_000),
        (SOURCES / 2, 2_000_000),
        (5 * SOURCES / 6, 3_000_000),
    ] {
        volume_per_as[i] = v;
    }
    let link_volumes = link_volume_matrix(&campaign, &volume_per_as);
    (campaign, link_volumes)
}

fn bench_attribution(c: &mut Criterion) {
    let (campaign, vols) = synthetic_campaign(11);
    // The two paths must agree before we time them.
    assert_eq!(
        rank_suspects(&campaign, &vols),
        rank_suspects_rescan(&campaign, &vols)
    );
    assert_eq!(
        estimate_cluster_volumes(&campaign, &vols, 10),
        estimate_cluster_volumes_rescan(&campaign, &vols, 10)
    );

    let mut group = c.benchmark_group("attribution");
    group.sample_size(10);
    group.bench_function("rank_estimate/indexed_50k", |b| {
        b.iter(|| {
            let s = rank_suspects(black_box(&campaign), black_box(&vols));
            let e = estimate_cluster_volumes(black_box(&campaign), black_box(&vols), 10);
            black_box((s.len(), e.len()))
        })
    });
    group.bench_function("rank_estimate/scan_50k", |b| {
        b.iter(|| {
            let s = rank_suspects_rescan(black_box(&campaign), black_box(&vols));
            let e = estimate_cluster_volumes_rescan(black_box(&campaign), black_box(&vols), 10);
            black_box((s.len(), e.len()))
        })
    });

    // Per-source cluster-size lookups: the quadratic hot path the ISSUE
    // names (distance curves, online reports call this per source). The
    // scan arm runs on a 1/64 sample — at 50k sources the full scan sweep
    // is ~5e9 operations per iteration.
    let all: Vec<AsIndex> = campaign.tracked.clone();
    let sample: Vec<AsIndex> = campaign.tracked.iter().copied().step_by(64).collect();
    group.bench_function("cluster_size_of/indexed_50k_all", |b| {
        b.iter(|| {
            let total: usize = all
                .iter()
                .filter_map(|&s| campaign.clustering.cluster_size_of(s))
                .sum();
            black_box(total)
        })
    });
    group.bench_function("cluster_size_of/scan_50k_sample64", |b| {
        b.iter(|| {
            let total: usize = sample
                .iter()
                .filter_map(|&s| campaign.clustering.cluster_size_of_scan(s))
                .sum();
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_attribution);
criterion_main!(benches);
