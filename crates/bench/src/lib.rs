//! # trackdown-bench
//!
//! Criterion benchmarks for the trackdown stack; see the `benches/`
//! directory:
//!
//! * `propagation` — BGP engine fixpoints per announcement configuration
//!   at small/medium/full scale, plain and poisoned;
//! * `clustering` — incremental catchment refinement vs the paper's naive
//!   split, plus CCDF extraction;
//! * `measurement` — traceroute campaigns, hop repair, and the
//!   per-configuration measure() pipeline;
//! * `pipeline` — per-figure workloads (campaign behind Figures 3/4,
//!   Figure 8 schedulers, Figure 10 attribution) and the packet codec;
//! * `attribution` — indexed/incremental suspect ranking, volume
//!   estimation, and cluster lookups vs the scan-based references on a
//!   50k-source synthetic partition.
//!
//! Run with `cargo bench --workspace`.
