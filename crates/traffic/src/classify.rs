//! Spoofed-traffic classification on a production prefix (the
//! Lichtblau-style alternative to a honeypot, §III-C).
//!
//! When the monitored prefix also carries legitimate traffic, the origin
//! can "infer the set of valid source addresses from each peering link and
//! label the traffic from other addresses as spoofed": a packet claiming
//! source AS `s` but arriving on a link other than `s`'s catchment link is
//! flagged.

use crate::flow::{claimed_as, Flow};
use serde::{Deserialize, Serialize};
use trackdown_bgp::{Catchments, LinkId};

/// Confusion-matrix report for the classifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ClassifierReport {
    /// Spoofed flows flagged as spoofed.
    pub true_positives: usize,
    /// Legitimate flows flagged as spoofed.
    pub false_positives: usize,
    /// Legitimate flows passed.
    pub true_negatives: usize,
    /// Spoofed flows passed.
    pub false_negatives: usize,
}

impl ClassifierReport {
    /// Precision = TP / (TP + FP); 1.0 when nothing was flagged.
    pub fn precision(&self) -> f64 {
        let flagged = self.true_positives + self.false_positives;
        if flagged == 0 {
            1.0
        } else {
            self.true_positives as f64 / flagged as f64
        }
    }

    /// Recall = TP / (TP + FN); 1.0 when nothing was spoofed.
    pub fn recall(&self) -> f64 {
        let spoofed = self.true_positives + self.false_negatives;
        if spoofed == 0 {
            1.0
        } else {
            self.true_positives as f64 / spoofed as f64
        }
    }
}

/// The per-link valid-source classifier.
#[derive(Debug, Clone)]
pub struct SpoofClassifier {
    /// For each AS index, the link its legitimate traffic is expected on.
    expected: Catchments,
}

impl SpoofClassifier {
    /// Learn expected sources from measured (or true) catchments.
    pub fn new(expected: Catchments) -> SpoofClassifier {
        SpoofClassifier { expected }
    }

    /// Classify one flow arriving on `arrival_link`. Returns `true` when
    /// the flow is judged spoofed:
    /// * the claimed source address maps to no known AS (bogon /
    ///   out-of-scheme address, like a victim address), or
    /// * the claimed AS's expected link differs from the arrival link, or
    /// * the claimed AS has no expected link at all.
    pub fn is_spoofed(&self, flow: &Flow, arrival_link: LinkId) -> bool {
        match claimed_as(flow.claimed_ip) {
            None => true,
            Some(claimed) => {
                if claimed.us() >= self.expected.len() {
                    return true;
                }
                self.expected.get(claimed) != Some(arrival_link)
            }
        }
    }

    /// Evaluate against ground truth: each flow arrives on the catchment
    /// link of its *true* source AS (`actual` catchments); flows whose true
    /// source has no catchment never arrive and are skipped.
    pub fn evaluate(&self, actual: &Catchments, flows: &[Flow]) -> ClassifierReport {
        let mut r = ClassifierReport::default();
        for f in flows {
            let Some(arrival) = actual.get(f.src_as) else {
                continue;
            };
            match (f.spoofed, self.is_spoofed(f, arrival)) {
                (true, true) => r.true_positives += 1,
                (false, true) => r.false_positives += 1,
                (false, false) => r.true_negatives += 1,
                (true, false) => r.false_negatives += 1,
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::{as_address, legitimate_flows, spoofed_flows, FlowConfig};
    use crate::placement::{place_sources, SourcePlacement};
    use trackdown_bgp::Prefix;
    use trackdown_topology::AsIndex;

    fn catchments(n: usize, f: impl Fn(usize) -> Option<u8>) -> Catchments {
        let mut c = Catchments::unassigned(n);
        for i in 0..n {
            c.set(AsIndex(i as u32), f(i).map(LinkId));
        }
        c
    }

    #[test]
    fn spoofed_victim_address_always_flagged() {
        let c = catchments(4, |i| Some((i % 2) as u8));
        let cls = SpoofClassifier::new(c.clone());
        let victim = u32::from_be_bytes([203, 0, 113, 7]);
        let f = Flow {
            src_as: AsIndex(0),
            claimed_ip: victim,
            dst_ip: 0,
            packets: 1,
            bytes: 64,
            spoofed: true,
        };
        assert!(cls.is_spoofed(&f, LinkId(0)));
        assert!(cls.is_spoofed(&f, LinkId(1)));
    }

    #[test]
    fn legit_flow_on_expected_link_passes() {
        let c = catchments(4, |i| Some((i % 2) as u8));
        let cls = SpoofClassifier::new(c);
        let f = Flow {
            src_as: AsIndex(2),
            claimed_ip: as_address(AsIndex(2), 1),
            dst_ip: 0,
            packets: 1,
            bytes: 64,
            spoofed: false,
        };
        assert!(!cls.is_spoofed(&f, LinkId(0)));
        // Same packet arriving on the wrong link is suspicious: a host in
        // another catchment forged AS2's space.
        assert!(cls.is_spoofed(&f, LinkId(1)));
    }

    #[test]
    fn perfect_knowledge_perfect_scores() {
        let n = 50;
        let truth = catchments(n, |i| Some((i % 3) as u8));
        let cls = SpoofClassifier::new(truth.clone());
        let cands: Vec<AsIndex> = (0..n as u32).map(AsIndex).collect();
        let placed = place_sources(n, &cands, SourcePlacement::Uniform { total: 30 }, 1);
        let hp = Prefix::new([184, 164, 224, 0], 24);
        let victim = u32::from_be_bytes([203, 0, 113, 9]);
        let mut flows = spoofed_flows(&placed, victim, hp, &FlowConfig::default());
        flows.extend(legitimate_flows(&cands, hp, 5, 100));
        let r = cls.evaluate(&truth, &flows);
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.recall(), 1.0);
        assert_eq!(r.false_positives, 0);
        assert_eq!(r.false_negatives, 0);
        assert_eq!(r.true_negatives, n);
    }

    #[test]
    fn stale_catchments_cause_false_positives() {
        let n = 10;
        let truth = catchments(n, |_| Some(1));
        // The classifier learned old catchments: everyone on link 0.
        let stale = catchments(n, |_| Some(0));
        let cls = SpoofClassifier::new(stale);
        let cands: Vec<AsIndex> = (0..n as u32).map(AsIndex).collect();
        let hp = Prefix::new([184, 164, 224, 0], 24);
        let flows = legitimate_flows(&cands, hp, 5, 100);
        let r = cls.evaluate(&truth, &flows);
        assert_eq!(r.false_positives, n);
        assert_eq!(r.precision(), 0.0);
    }

    #[test]
    fn unreachable_sources_never_arrive() {
        let truth = catchments(3, |_| None);
        let cls = SpoofClassifier::new(truth.clone());
        let flows = legitimate_flows(&[AsIndex(0)], Prefix::new([184, 164, 224, 0], 24), 1, 64);
        let r = cls.evaluate(&truth, &flows);
        assert_eq!(r, ClassifierReport::default());
        // Degenerate report has well-defined scores.
        assert_eq!(r.precision(), 1.0);
        assert_eq!(r.recall(), 1.0);
    }
}
