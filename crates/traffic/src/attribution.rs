//! Volume attribution: from per-AS spoofed volume to per-link and
//! per-cluster aggregates (feeds Figure 10).

use trackdown_bgp::{Catchments, LinkId};
use trackdown_topology::AsIndex;

/// Aggregate per-AS volumes onto peering links through the catchments.
pub fn volume_per_link(
    catchments: &Catchments,
    volume_per_as: &[u64],
    num_links: usize,
) -> Vec<u64> {
    let mut out = vec![0u64; num_links];
    for (i, &v) in volume_per_as.iter().enumerate() {
        if v == 0 {
            continue;
        }
        if let Some(link) = catchments.get(AsIndex(i as u32)) {
            out[link.us()] += v;
        }
    }
    out
}

/// The link carrying the most volume, ties toward the lower id.
///
/// # Panics
/// Panics if `volumes` has more entries than the `LinkId` space (256):
/// truncating the index would alias distinct links.
pub fn hottest(volumes: &[u64]) -> Option<LinkId> {
    volumes
        .iter()
        .enumerate()
        .filter(|(_, v)| **v > 0)
        .max_by_key(|(i, v)| (**v, usize::MAX - *i))
        .map(|(i, _)| LinkId::from_usize(i))
}

/// Figure 10 series: cumulative fraction of total volume originated from
/// clusters of size ≤ x, returned as ascending `(cluster_size,
/// cumulative_fraction)` points.
///
/// `clusters` partition (a subset of) the AS space; volume from ASes not
/// covered by any cluster is excluded from the total.
pub fn cumulative_volume_by_cluster_size(
    clusters: &[Vec<AsIndex>],
    volume_per_as: &[u64],
) -> Vec<(usize, f64)> {
    cumulative_volume_by_cluster_slices(clusters.iter().map(|c| c.as_slice()), volume_per_as)
}

/// [`cumulative_volume_by_cluster_size`] over borrowed member slices, so
/// callers holding a CSR-backed clustering (e.g.
/// `Clustering::iter_clusters`) never materialize `Vec<Vec<AsIndex>>`.
///
/// # Panics
/// Panics when `volume_per_as` does not cover every cluster member: a
/// short row would read as zero volume and silently exonerate clusters
/// (the same width contract `validate_link_volumes` enforces in
/// `trackdown-core`).
pub fn cumulative_volume_by_cluster_slices<'a>(
    clusters: impl IntoIterator<Item = &'a [AsIndex]>,
    volume_per_as: &[u64],
) -> Vec<(usize, f64)> {
    let mut per_size: std::collections::BTreeMap<usize, u64> = std::collections::BTreeMap::new();
    let mut total = 0u64;
    for cluster in clusters {
        if let Some(max) = cluster.iter().map(|a| a.us()).max() {
            assert!(
                max < volume_per_as.len(),
                "volume_per_as covers {} ASes but a cluster reaches AS index {}; \
                 missing entries would read as zero volume and silently exonerate clusters",
                volume_per_as.len(),
                max
            );
        }
        let v: u64 = cluster.iter().map(|a| volume_per_as[a.us()]).sum();
        total += v;
        *per_size.entry(cluster.len()).or_insert(0) += v;
    }
    if total == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(per_size.len());
    let mut acc = 0u64;
    for (size, v) in per_size {
        acc += v;
        out.push((size, acc as f64 / total as f64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_link_aggregation() {
        let mut c = Catchments::unassigned(4);
        c.set(AsIndex(0), Some(LinkId(0)));
        c.set(AsIndex(1), Some(LinkId(2)));
        c.set(AsIndex(2), Some(LinkId(2)));
        let v = volume_per_link(&c, &[10, 20, 30, 40], 3);
        assert_eq!(v, vec![10, 0, 50]); // AS3's 40 is unattributed
        assert_eq!(hottest(&v), Some(LinkId(2)));
        assert_eq!(hottest(&[0, 0]), None);
    }

    #[test]
    fn cumulative_series_is_monotone_and_ends_at_one() {
        let clusters = vec![
            vec![AsIndex(0)],                         // size 1, vol 5
            vec![AsIndex(1), AsIndex(2)],             // size 2, vol 15
            vec![AsIndex(3), AsIndex(4), AsIndex(5)], // size 3, vol 0
        ];
        let vols = [5u64, 10, 5, 0, 0, 0];
        let series = cumulative_volume_by_cluster_size(&clusters, &vols);
        assert_eq!(series, vec![(1, 0.25), (2, 1.0), (3, 1.0)]);
        for w in series.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn same_size_clusters_merge() {
        let clusters = vec![vec![AsIndex(0)], vec![AsIndex(1)]];
        let vols = [1u64, 3];
        let series = cumulative_volume_by_cluster_size(&clusters, &vols);
        assert_eq!(series, vec![(1, 1.0)]);
    }

    #[test]
    fn zero_volume_yields_empty_series() {
        let clusters = vec![vec![AsIndex(0)]];
        assert!(cumulative_volume_by_cluster_size(&clusters, &[0]).is_empty());
    }

    /// Regression: a volume row shorter than the cluster space used to
    /// read missing ASes as 0 via `unwrap_or(0)`, silently zeroing the
    /// cluster's contribution. The width contract now panics instead.
    #[test]
    #[should_panic(expected = "silently exonerate")]
    fn short_volume_row_panics_instead_of_exonerating() {
        let clusters = vec![vec![AsIndex(0)], vec![AsIndex(5), AsIndex(6)]];
        // Only 2 entries: AS5/AS6 are out of range, not zero-volume.
        let vols = [5u64, 7];
        let _ = cumulative_volume_by_cluster_size(&clusters, &vols);
    }

    /// Regression: `hottest` used to truncate the winning index with
    /// `as u8`, aliasing link 256 onto link 0.
    #[test]
    #[should_panic(expected = "truncation would alias")]
    fn hottest_guards_linkid_truncation() {
        let mut vols = vec![0u64; 300];
        vols[256] = 9; // would wrap to LinkId(0) under `as u8`
        let _ = hottest(&vols);
    }

    /// In-range volumes keep working after the truncation guard.
    #[test]
    fn hottest_accepts_full_linkid_range() {
        let mut vols = vec![0u64; 256];
        vols[255] = 3;
        assert_eq!(hottest(&vols), Some(LinkId(255)));
    }
}
