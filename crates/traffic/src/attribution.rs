//! Volume attribution: from per-AS spoofed volume to per-link and
//! per-cluster aggregates (feeds Figure 10).

use trackdown_bgp::{Catchments, LinkId};
use trackdown_topology::AsIndex;

/// Aggregate per-AS volumes onto peering links through the catchments.
pub fn volume_per_link(
    catchments: &Catchments,
    volume_per_as: &[u64],
    num_links: usize,
) -> Vec<u64> {
    let mut out = vec![0u64; num_links];
    for (i, &v) in volume_per_as.iter().enumerate() {
        if v == 0 {
            continue;
        }
        if let Some(link) = catchments.get(AsIndex(i as u32)) {
            out[link.us()] += v;
        }
    }
    out
}

/// The link carrying the most volume, ties toward the lower id.
pub fn hottest(volumes: &[u64]) -> Option<LinkId> {
    volumes
        .iter()
        .enumerate()
        .filter(|(_, v)| **v > 0)
        .max_by_key(|(i, v)| (**v, usize::MAX - *i))
        .map(|(i, _)| LinkId(i as u8))
}

/// Figure 10 series: cumulative fraction of total volume originated from
/// clusters of size ≤ x, returned as ascending `(cluster_size,
/// cumulative_fraction)` points.
///
/// `clusters` partition (a subset of) the AS space; volume from ASes not
/// covered by any cluster is excluded from the total.
pub fn cumulative_volume_by_cluster_size(
    clusters: &[Vec<AsIndex>],
    volume_per_as: &[u64],
) -> Vec<(usize, f64)> {
    cumulative_volume_by_cluster_slices(clusters.iter().map(|c| c.as_slice()), volume_per_as)
}

/// [`cumulative_volume_by_cluster_size`] over borrowed member slices, so
/// callers holding a CSR-backed clustering (e.g.
/// `Clustering::iter_clusters`) never materialize `Vec<Vec<AsIndex>>`.
pub fn cumulative_volume_by_cluster_slices<'a>(
    clusters: impl IntoIterator<Item = &'a [AsIndex]>,
    volume_per_as: &[u64],
) -> Vec<(usize, f64)> {
    let mut per_size: std::collections::BTreeMap<usize, u64> = std::collections::BTreeMap::new();
    let mut total = 0u64;
    for cluster in clusters {
        let v: u64 = cluster
            .iter()
            .map(|a| volume_per_as.get(a.us()).copied().unwrap_or(0))
            .sum();
        total += v;
        *per_size.entry(cluster.len()).or_insert(0) += v;
    }
    if total == 0 {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(per_size.len());
    let mut acc = 0u64;
    for (size, v) in per_size {
        acc += v;
        out.push((size, acc as f64 / total as f64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_link_aggregation() {
        let mut c = Catchments::unassigned(4);
        c.set(AsIndex(0), Some(LinkId(0)));
        c.set(AsIndex(1), Some(LinkId(2)));
        c.set(AsIndex(2), Some(LinkId(2)));
        let v = volume_per_link(&c, &[10, 20, 30, 40], 3);
        assert_eq!(v, vec![10, 0, 50]); // AS3's 40 is unattributed
        assert_eq!(hottest(&v), Some(LinkId(2)));
        assert_eq!(hottest(&[0, 0]), None);
    }

    #[test]
    fn cumulative_series_is_monotone_and_ends_at_one() {
        let clusters = vec![
            vec![AsIndex(0)],                         // size 1, vol 5
            vec![AsIndex(1), AsIndex(2)],             // size 2, vol 15
            vec![AsIndex(3), AsIndex(4), AsIndex(5)], // size 3, vol 0
        ];
        let vols = [5u64, 10, 5, 0, 0, 0];
        let series = cumulative_volume_by_cluster_size(&clusters, &vols);
        assert_eq!(series, vec![(1, 0.25), (2, 1.0), (3, 1.0)]);
        for w in series.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn same_size_clusters_merge() {
        let clusters = vec![vec![AsIndex(0)], vec![AsIndex(1)]];
        let vols = [1u64, 3];
        let series = cumulative_volume_by_cluster_size(&clusters, &vols);
        assert_eq!(series, vec![(1, 1.0)]);
    }

    #[test]
    fn zero_volume_yields_empty_series() {
        let clusters = vec![vec![AsIndex(0)]];
        assert!(cumulative_volume_by_cluster_size(&clusters, &[0]).is_empty());
    }
}
