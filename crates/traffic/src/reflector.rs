//! The amplification attack triangle: attackers → reflectors → victim.
//!
//! The paper's introduction motivates the whole system with reflection
//! attacks: "origins send small queries with the source IP address set to
//! the victim's IP address such that large responses from responders
//! flood the victim" (§VII-a). This module models that triangle so the
//! victim's perspective — gigabits of response traffic from *reflectors*,
//! with the true origins invisible — can be contrasted with the origin-
//! network vantage the paper's techniques exploit.
//!
//! Reflectors are abusable open services (NTP monlist, open DNS
//! resolvers, memcached) scattered across ASes; each protocol has a
//! measured amplification factor.

use crate::flow::Flow;
use crate::packet::amp_ports;
use crate::placement::PlacedSources;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use trackdown_topology::AsIndex;

/// An abusable reflector service class with its amplification factor
/// (bandwidth amplification factors from the amplification-attack
/// literature).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReflectorKind {
    /// NTP `monlist` (BAF ≈ 557).
    Ntp,
    /// Open DNS resolver, `ANY` queries (BAF ≈ 54).
    Dns,
    /// memcached over UDP (BAF ≈ 10 000+, the record-setting vector).
    Memcached,
    /// CharGen (BAF ≈ 359).
    Chargen,
}

impl ReflectorKind {
    /// Bandwidth amplification factor: response bytes per query byte.
    pub fn amplification(self) -> f64 {
        match self {
            ReflectorKind::Ntp => 556.9,
            ReflectorKind::Dns => 54.6,
            ReflectorKind::Memcached => 10_000.0,
            ReflectorKind::Chargen => 358.8,
        }
    }

    /// The UDP port the service answers on.
    pub fn port(self) -> u16 {
        match self {
            ReflectorKind::Ntp => amp_ports::NTP,
            ReflectorKind::Dns => amp_ports::DNS,
            ReflectorKind::Memcached => amp_ports::MEMCACHED,
            ReflectorKind::Chargen => amp_ports::CHARGEN,
        }
    }
}

/// One reflector: an abusable host in some AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Reflector {
    /// The AS hosting the open service.
    pub asn_index: AsIndex,
    /// Service class.
    pub kind: ReflectorKind,
}

/// Deterministically scatter `count` reflectors over candidate ASes with
/// the given kind mix (uniform over candidates; open services correlate
/// poorly with network size in practice).
pub fn scatter_reflectors(
    candidates: &[AsIndex],
    count: usize,
    kinds: &[ReflectorKind],
    seed: u64,
) -> Vec<Reflector> {
    assert!(!candidates.is_empty() && !kinds.is_empty());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| Reflector {
            asn_index: candidates[rng.random_range(0..candidates.len())],
            kind: kinds[rng.random_range(0..kinds.len())],
        })
        .collect()
}

/// What the victim sees during one observation window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VictimReport {
    /// Amplified bytes received, per reflector AS (the *apparent*
    /// sources). The true attacker ASes appear nowhere.
    pub per_reflector_as: Vec<(AsIndex, u64)>,
    /// Total response bytes at the victim.
    pub total_bytes: u64,
    /// Total query bytes the attackers actually sent.
    pub query_bytes: u64,
}

impl VictimReport {
    /// Overall bandwidth amplification achieved by the attack.
    pub fn overall_amplification(&self) -> f64 {
        if self.query_bytes == 0 {
            return 0.0;
        }
        self.total_bytes as f64 / self.query_bytes as f64
    }
}

/// Run the reflection attack: every attacker source sprays its query
/// budget across the reflectors (round-robin from a seeded start), each
/// reflector amplifies toward the victim. Returns the victim's view and
/// the query [`Flow`]s as they leave the attacker ASes (the flows a
/// reflector-side honeypot — AmpPot — would log).
pub fn reflect_attack(
    placed: &PlacedSources,
    reflectors: &[Reflector],
    victim_ip: u32,
    query_bytes_per_source: u64,
    seed: u64,
) -> (VictimReport, Vec<Flow>) {
    assert!(!reflectors.is_empty());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut per_reflector: Vec<u64> = vec![0; reflectors.len()];
    let mut flows = Vec::new();
    let mut total_query = 0u64;
    for src in placed.source_ases() {
        let sources = placed.counts[src.us()] as u64;
        let budget = sources * query_bytes_per_source;
        total_query += budget;
        // Spray round-robin from a random start so reflector load is even
        // in aggregate but deterministic.
        let start = rng.random_range(0..reflectors.len());
        let share = budget / reflectors.len() as u64;
        let remainder = budget % reflectors.len() as u64;
        for k in 0..reflectors.len() {
            let idx = (start + k) % reflectors.len();
            let bytes = share + if (k as u64) < remainder { 1 } else { 0 };
            if bytes == 0 {
                continue;
            }
            per_reflector[idx] += bytes;
            flows.push(Flow {
                src_as: src,
                claimed_ip: victim_ip,
                // Destination stands in for the reflector's address; the
                // AS-level simulation only needs its AS.
                dst_ip: 0x0808_0808,
                packets: bytes / 64,
                bytes,
                spoofed: true,
            });
        }
    }
    // Aggregate amplified volume per reflector AS.
    let mut per_as: std::collections::BTreeMap<AsIndex, u64> = std::collections::BTreeMap::new();
    let mut total = 0u64;
    for (r, &q) in reflectors.iter().zip(&per_reflector) {
        let amplified = (q as f64 * r.kind.amplification()) as u64;
        *per_as.entry(r.asn_index).or_insert(0) += amplified;
        total += amplified;
    }
    (
        VictimReport {
            per_reflector_as: per_as.into_iter().collect(),
            total_bytes: total,
            query_bytes: total_query,
        },
        flows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{place_sources, SourcePlacement};

    fn candidates(n: usize) -> Vec<AsIndex> {
        (0..n as u32).map(AsIndex).collect()
    }

    #[test]
    fn scatter_is_deterministic_and_in_range() {
        let c = candidates(50);
        let kinds = [ReflectorKind::Ntp, ReflectorKind::Dns];
        let a = scatter_reflectors(&c, 30, &kinds, 5);
        let b = scatter_reflectors(&c, 30, &kinds, 5);
        assert_eq!(a, b);
        assert_eq!(a.len(), 30);
        for r in &a {
            assert!(c.contains(&r.asn_index));
            assert!(kinds.contains(&r.kind));
        }
    }

    #[test]
    fn victim_sees_reflectors_not_attackers() {
        let c = candidates(100);
        // Attackers in ASes 0..10, reflectors in ASes 50..100.
        let placed = place_sources(100, &c[..10], SourcePlacement::Uniform { total: 5 }, 1);
        let reflectors = scatter_reflectors(&c[50..], 20, &[ReflectorKind::Ntp], 2);
        let (report, flows) = reflect_attack(&placed, &reflectors, 0xCB00_7101, 10_000, 3);
        // Apparent sources are reflector ASes only.
        for (asn_index, bytes) in &report.per_reflector_as {
            assert!(asn_index.0 >= 50, "victim saw a true attacker AS");
            assert!(*bytes > 0);
        }
        // The flows leaving attacker ASes are the honeypot-visible truth.
        for f in &flows {
            assert!(f.src_as.0 < 10);
            assert!(f.spoofed);
        }
        // Query volume is conserved.
        let flow_bytes: u64 = flows.iter().map(|f| f.bytes).sum();
        assert_eq!(flow_bytes, report.query_bytes);
        assert_eq!(report.query_bytes, placed.total() * 10_000);
    }

    #[test]
    fn amplification_factor_matches_kind() {
        let c = candidates(10);
        let placed = place_sources(10, &c[..1], SourcePlacement::Single, 4);
        for kind in [
            ReflectorKind::Ntp,
            ReflectorKind::Dns,
            ReflectorKind::Memcached,
            ReflectorKind::Chargen,
        ] {
            let reflectors = scatter_reflectors(&c[5..], 4, &[kind], 5);
            let (report, _) = reflect_attack(&placed, &reflectors, 1, 100_000, 6);
            let amp = report.overall_amplification();
            assert!(
                (amp - kind.amplification()).abs() / kind.amplification() < 0.01,
                "{kind:?}: amplification {amp} != {}",
                kind.amplification()
            );
            assert!(kind.port() > 0);
        }
    }

    #[test]
    fn zero_attackers_zero_traffic() {
        let c = candidates(10);
        let placed = PlacedSources {
            counts: vec![0; 10],
        };
        let reflectors = scatter_reflectors(&c, 3, &[ReflectorKind::Dns], 7);
        let (report, flows) = reflect_attack(&placed, &reflectors, 1, 1_000, 8);
        assert_eq!(report.total_bytes, 0);
        assert_eq!(report.overall_amplification(), 0.0);
        assert!(flows.is_empty());
    }
}
