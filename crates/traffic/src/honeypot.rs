//! The amplification honeypot (AmpPot analog, §III-C).
//!
//! The origin hosts a service that *looks* amplifiable on the experiment
//! prefix. Attackers scanning for reflectors find it and start bouncing
//! spoofed queries off it; since no legitimate client ever talks to the
//! prefix, every received query is spoofed by construction. The honeypot's
//! job in the paper's system is volume accounting: how many spoofed bytes
//! arrived per peering link. Following AmpPot, responses are rate-capped
//! so the honeypot never contributes meaningful attack volume.

use crate::flow::Flow;
use serde::{Deserialize, Serialize};
use trackdown_bgp::{Catchments, LinkId, Prefix};

/// Honeypot configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HoneypotConfig {
    /// The prefix the honeypot answers on (the experiment prefix).
    pub prefix: Prefix,
    /// Response amplification factor the emulated service would have
    /// (NTP monlist ≈ 556x). Only used to compute the *capped* response
    /// volume; the honeypot never actually amplifies.
    pub amplification_factor: f64,
    /// Cap on bytes/observation-window the honeypot will send back
    /// (AmpPot's rate limiting). `None` = mute honeypot (never responds).
    pub response_byte_cap: Option<u64>,
}

impl Default for HoneypotConfig {
    fn default() -> HoneypotConfig {
        HoneypotConfig {
            prefix: Prefix::new([184, 164, 224, 0], 24),
            amplification_factor: 556.9,
            response_byte_cap: Some(1 << 20),
        }
    }
}

/// What the honeypot recorded over one observation window.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HoneypotReport {
    /// Spoofed bytes received per peering link, indexed by `LinkId`.
    pub per_link_bytes: Vec<u64>,
    /// Spoofed packets received per peering link.
    pub per_link_packets: Vec<u64>,
    /// Total spoofed bytes received.
    pub total_bytes: u64,
    /// Flows not attributable to a link (source AS had no catchment,
    /// e.g. because the prefix was withdrawn from its whole region).
    pub unattributed_flows: usize,
    /// Bytes the rate-capped responder would have sent.
    pub response_bytes: u64,
}

impl HoneypotReport {
    /// The link receiving the most spoofed traffic — the paper's per-
    /// configuration signal ("the spoofed traffic is concentrated on the
    /// link with n").
    ///
    /// # Panics
    /// Panics if `per_link_bytes` outgrows the `LinkId` space (256):
    /// truncating the index would alias distinct links.
    pub fn hottest_link(&self) -> Option<LinkId> {
        self.per_link_bytes
            .iter()
            .enumerate()
            .filter(|(_, b)| **b > 0)
            .max_by_key(|(i, b)| (**b, usize::MAX - *i)) // ties → lower id
            .map(|(i, _)| LinkId::from_usize(i))
    }

    /// Fraction of total volume per link.
    pub fn link_shares(&self) -> Vec<f64> {
        if self.total_bytes == 0 {
            return vec![0.0; self.per_link_bytes.len()];
        }
        self.per_link_bytes
            .iter()
            .map(|&b| b as f64 / self.total_bytes as f64)
            .collect()
    }
}

/// The honeypot itself.
#[derive(Debug, Clone)]
pub struct Honeypot {
    cfg: HoneypotConfig,
}

impl Honeypot {
    /// Build a honeypot.
    pub fn new(cfg: HoneypotConfig) -> Honeypot {
        Honeypot { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HoneypotConfig {
        &self.cfg
    }

    /// Observe one window of flows under the given (ground-truth,
    /// data-plane) catchments. Only flows destined to the honeypot prefix
    /// are seen; each is attributed to the ingress link of its *true*
    /// source AS — which is exactly what the origin's border routers see.
    pub fn observe(
        &self,
        catchments: &Catchments,
        num_links: usize,
        flows: &[Flow],
    ) -> HoneypotReport {
        let mut per_link_bytes = vec![0u64; num_links];
        let mut per_link_packets = vec![0u64; num_links];
        let mut total_bytes = 0u64;
        let mut unattributed = 0usize;
        for f in flows {
            if !self.cfg.prefix.contains(f.dst_ip) {
                continue; // not addressed to the honeypot
            }
            match catchments.get(f.src_as) {
                Some(link) => {
                    per_link_bytes[link.us()] += f.bytes;
                    per_link_packets[link.us()] += f.packets;
                    total_bytes += f.bytes;
                }
                None => unattributed += 1,
            }
        }
        let uncapped = (total_bytes as f64 * self.cfg.amplification_factor) as u64;
        let response_bytes = match self.cfg.response_byte_cap {
            Some(cap) => uncapped.min(cap),
            None => 0,
        };
        HoneypotReport {
            per_link_bytes,
            per_link_packets,
            total_bytes,
            unattributed_flows: unattributed,
            response_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trackdown_topology::AsIndex;

    fn catchments3() -> Catchments {
        let mut c = Catchments::unassigned(4);
        c.set(AsIndex(0), Some(LinkId(0)));
        c.set(AsIndex(1), Some(LinkId(1)));
        c.set(AsIndex(2), Some(LinkId(1)));
        // AS 3 unreachable.
        c
    }

    fn flow(src: u32, bytes: u64, dst_ip: u32) -> Flow {
        Flow {
            src_as: AsIndex(src),
            claimed_ip: 0xCB00_7107,
            dst_ip,
            packets: bytes / 64,
            bytes,
            spoofed: true,
        }
    }

    #[test]
    fn volumes_attributed_to_ingress_links() {
        let hp = Honeypot::new(HoneypotConfig::default());
        let dst = hp.config().prefix.addr(1);
        let flows = vec![
            flow(0, 1_000, dst),
            flow(1, 2_000, dst),
            flow(2, 3_000, dst),
        ];
        let r = hp.observe(&catchments3(), 3, &flows);
        assert_eq!(r.per_link_bytes, vec![1_000, 5_000, 0]);
        assert_eq!(r.total_bytes, 6_000);
        assert_eq!(r.hottest_link(), Some(LinkId(1)));
        assert_eq!(r.unattributed_flows, 0);
        let shares = r.link_shares();
        assert!((shares[1] - 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn traffic_to_other_prefixes_ignored() {
        let hp = Honeypot::new(HoneypotConfig::default());
        let elsewhere = u32::from_be_bytes([8, 8, 8, 8]);
        let r = hp.observe(&catchments3(), 3, &[flow(0, 1_000, elsewhere)]);
        assert_eq!(r.total_bytes, 0);
        assert_eq!(r.hottest_link(), None);
    }

    #[test]
    fn unattributed_flows_counted() {
        let hp = Honeypot::new(HoneypotConfig::default());
        let dst = hp.config().prefix.addr(1);
        let r = hp.observe(&catchments3(), 3, &[flow(3, 1_000, dst)]);
        assert_eq!(r.total_bytes, 0);
        assert_eq!(r.unattributed_flows, 1);
    }

    #[test]
    fn response_rate_cap_applies() {
        let cfg = HoneypotConfig {
            response_byte_cap: Some(10_000),
            ..HoneypotConfig::default()
        };
        let hp = Honeypot::new(cfg);
        let dst = hp.config().prefix.addr(1);
        let r = hp.observe(&catchments3(), 3, &[flow(0, 1_000_000, dst)]);
        assert_eq!(r.response_bytes, 10_000, "cap must bind");
        let mute = Honeypot::new(HoneypotConfig {
            response_byte_cap: None,
            ..HoneypotConfig::default()
        });
        let r2 = mute.observe(&catchments3(), 3, &[flow(0, 1_000_000, dst)]);
        assert_eq!(r2.response_bytes, 0);
    }

    #[test]
    fn hottest_link_tie_breaks_to_lower_id() {
        let hp = Honeypot::new(HoneypotConfig::default());
        let dst = hp.config().prefix.addr(1);
        let flows = vec![flow(0, 500, dst), flow(1, 500, dst)];
        let r = hp.observe(&catchments3(), 3, &flows);
        assert_eq!(r.hottest_link(), Some(LinkId(0)));
    }

    /// Regression: `hottest_link` used to truncate the winning index with
    /// `as u8`, aliasing link 256 onto link 0.
    #[test]
    #[should_panic(expected = "truncation would alias")]
    fn hottest_link_guards_linkid_truncation() {
        let mut per_link_bytes = vec![0u64; 300];
        per_link_bytes[256] = 42;
        let r = HoneypotReport {
            per_link_bytes,
            per_link_packets: vec![0; 300],
            total_bytes: 42,
            unattributed_flows: 0,
            response_bytes: 0,
        };
        let _ = r.hottest_link();
    }
}
