//! Streaming volume accumulators for line-rate attribution.
//!
//! The attribution plane in `trackdown-core` correlates per-configuration,
//! per-link spoofed volumes with the campaign's clustering. The exact
//! pipeline materializes those volumes as dense `Vec<Vec<u64>>` rows — fine
//! for analysis, but a production traceback box ingesting millions of
//! flows/sec cannot afford a full scan of the AS space per configuration.
//! This module provides the streaming alternative: flows are folded into a
//! [`VolumeAccumulator`] as they arrive, and the localization layer reads
//! volumes back through the same trait whether they are exact or
//! approximate.
//!
//! Two streaming implementations:
//!
//! * [`SketchAccumulator`] — one seeded count-min sketch per configuration,
//!   conservative-update variant. Estimates are one-sided: always `>=` the
//!   true volume, and at most `εN` over it with probability `1 − δ`
//!   (`ε = e/width`, `δ = e^(−depth)`, `N` = bytes recorded into that
//!   configuration's sketch). Because link ids form a small enumerable
//!   universe, [`VolumeAccumulator::error_bound`] additionally computes a
//!   *deterministic* collision bound by enumeration — the bound the
//!   localization layer uses to report rank stability without any failure
//!   probability.
//! * [`BatchedDenseAccumulator`] — exact dense counters with u64-lane
//!   batching on the ingest path: each batch is accumulated into an
//!   L1-resident scratch of `LANES` independent lanes per link (breaking
//!   the add dependency chain on heavy-hitter links) and folded into the
//!   main rows once per batch.
//!
//! The one-sided error direction is what makes sketches safe here at all:
//! the attribution plane *exonerates* a cluster when its link reads zero
//! volume (see `rank_suspects`), and an overestimate can never turn a
//! nonzero volume into a zero — a sketch may add false suspects within the
//! error bound, but it can never silently clear a guilty cluster.

use crate::flow::Flow;
use trackdown_bgp::{Catchments, LinkId};

/// Default number of flows per streaming batch (see [`ingest_stream`]).
pub const DEFAULT_FLOW_BATCH: usize = 1024;

/// A per-configuration, per-link volume store the localization layer can
/// read in place of exact dense rows.
///
/// Implementations may be exact ([`BatchedDenseAccumulator`], plain
/// `[Vec<u64>]` rows) or approximate ([`SketchAccumulator`]); approximate
/// ones must be *one-sided*: [`VolumeAccumulator::volume`] is always `>=`
/// the true recorded volume, and exceeds it by at most
/// [`VolumeAccumulator::error_bound`].
pub trait VolumeAccumulator {
    /// Number of configurations (rows) this accumulator covers.
    fn num_configs(&self) -> usize;

    /// Number of link counters per configuration (the row width).
    fn num_links(&self) -> usize;

    /// Fold `bytes` observed on `link` during configuration `config` into
    /// the store.
    ///
    /// # Panics
    /// May panic if `config >= num_configs()` or `link.us() >=
    /// num_links()` (exact implementations index directly).
    fn record(&mut self, config: usize, link: LinkId, bytes: u64);

    /// Read back the (possibly overestimated) volume for one counter.
    fn volume(&self, config: usize, link: LinkId) -> u64;

    /// Deterministic upper bound on the overestimation of any single
    /// counter: for every `(config, link)`, `volume() - true <=
    /// error_bound()`. Exact implementations return 0.
    fn error_bound(&self) -> u64;

    /// Sketch bucket occupancy in permille (`Some` only for sketch-backed
    /// implementations); mirrored to the `traffic.sketch.saturation_permille`
    /// gauge on ingest.
    fn saturation_permille(&self) -> Option<u64> {
        None
    }

    /// Materialize one configuration's volumes as a dense row.
    fn dense_row(&self, config: usize) -> Vec<u64> {
        (0..self.num_links())
            .map(|l| self.volume(config, LinkId::from_usize(l)))
            .collect()
    }

    /// Materialize every configuration as dense rows (the exact pipeline's
    /// native shape).
    fn dense_rows(&self) -> Vec<Vec<u64>> {
        (0..self.num_configs()).map(|c| self.dense_row(c)).collect()
    }

    /// Ingest one batch of flows observed during `config`, attributing
    /// each flow to its source AS's catchment link. Flows from ASes with
    /// no catchment (or outside the catchment / counter range) are counted
    /// as unattributed and dropped — exactly what the honeypot does with
    /// traffic it cannot pin to an ingress link.
    ///
    /// Maintains the `traffic.ingest.flows` / `traffic.ingest.bytes` /
    /// `traffic.ingest.unattributed` counters and, for sketch-backed
    /// stores, the `traffic.sketch.saturation_permille` gauge.
    fn ingest(&mut self, config: usize, catchments: &Catchments, flows: &[Flow]) {
        let width = self.num_links();
        let mut bytes = 0u64;
        let mut unattributed = 0u64;
        for f in flows {
            bytes += f.bytes;
            let link = if f.src_as.us() < catchments.len() {
                catchments.get(f.src_as)
            } else {
                None
            };
            match link {
                Some(l) if l.us() < width => self.record(config, l, f.bytes),
                _ => unattributed += 1,
            }
        }
        publish_ingest_metrics(flows.len() as u64, bytes, unattributed);
        if let Some(s) = self.saturation_permille() {
            trackdown_obs::global()
                .gauge("traffic.sketch.saturation_permille")
                .set(s as i64);
        }
    }
}

fn publish_ingest_metrics(flows: u64, bytes: u64, unattributed: u64) {
    trackdown_obs::counter!("traffic.ingest.flows").add(flows);
    trackdown_obs::counter!("traffic.ingest.bytes").add(bytes);
    trackdown_obs::counter!("traffic.ingest.unattributed").add(unattributed);
}

/// Stream a flow list into an accumulator in fixed-size batches — the
/// shape a line-rate deployment sees (NetFlow-style export intervals)
/// rather than one giant slice.
pub fn ingest_stream<A: VolumeAccumulator + ?Sized>(
    acc: &mut A,
    config: usize,
    catchments: &Catchments,
    flows: &[Flow],
    batch: usize,
) {
    for chunk in crate::flow::flow_batches(flows, batch) {
        acc.ingest(config, catchments, chunk);
    }
}

/// Exact dense rows are the trivial accumulator: direct indexing, zero
/// error. This is the adapter that lets the `_acc` localization entry
/// points accept the exact pipeline's native `Vec<Vec<u64>>` output.
impl VolumeAccumulator for [Vec<u64>] {
    fn num_configs(&self) -> usize {
        self.len()
    }

    fn num_links(&self) -> usize {
        self.first().map_or(0, Vec::len)
    }

    fn record(&mut self, config: usize, link: LinkId, bytes: u64) {
        self[config][link.us()] += bytes;
    }

    fn volume(&self, config: usize, link: LinkId) -> u64 {
        self[config][link.us()]
    }

    fn error_bound(&self) -> u64 {
        0
    }

    fn dense_row(&self, config: usize) -> Vec<u64> {
        self[config].clone()
    }

    fn dense_rows(&self) -> Vec<Vec<u64>> {
        self.to_vec()
    }
}

// ---------------------------------------------------------------------------
// Count-min sketch (conservative update)
// ---------------------------------------------------------------------------

/// One count-min sketch: `depth` rows of `width` buckets, each row with its
/// own seeded multiply-shift hash. Conservative update: a key's buckets are
/// raised only as far as its new point estimate, which keeps estimates
/// one-sided (`>=` true) while strictly dominating the plain-CMS update in
/// accuracy (a conservative bucket is never above its plain-CMS value, so
/// every plain-CMS guarantee carries over).
#[derive(Debug, Clone)]
pub struct CountMinSketch {
    width: usize,
    depth: usize,
    seeds: Vec<u64>,
    buckets: Vec<u64>,
    occupied: usize,
    total: u64,
}

/// SplitMix64: the seed expander for per-row hash seeds (deterministic,
/// dependency-free).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl CountMinSketch {
    /// A `width × depth` sketch with hash seeds derived from `seed`.
    ///
    /// # Panics
    /// Panics if `width` or `depth` is zero.
    pub fn new(width: usize, depth: usize, seed: u64) -> CountMinSketch {
        assert!(width > 0, "sketch width must be positive");
        assert!(depth > 0, "sketch depth must be positive");
        CountMinSketch {
            width,
            depth,
            seeds: (0..depth as u64).map(|r| splitmix64(seed ^ r)).collect(),
            buckets: vec![0; width * depth],
            occupied: 0,
            total: 0,
        }
    }

    /// Buckets per row.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of hash rows.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Bucket index of `key` in row `r`.
    #[inline]
    fn index(&self, r: usize, key: usize) -> usize {
        let h = splitmix64(key as u64 ^ self.seeds[r]);
        // High bits of the mix modulo the width: well distributed for the
        // small sequential key universe link ids form.
        ((h >> 16) % self.width as u64) as usize
    }

    /// Fold `bytes` for `key` in with the conservative update.
    pub fn record(&mut self, key: usize, bytes: u64) {
        let target = self.estimate(key).saturating_add(bytes);
        for r in 0..self.depth {
            let i = r * self.width + self.index(r, key);
            let b = &mut self.buckets[i];
            if *b == 0 && target > 0 {
                self.occupied += 1;
            }
            *b = (*b).max(target);
        }
        self.total = self.total.saturating_add(bytes);
    }

    /// The per-row bucket indexes of `key` — precompute these once per key
    /// and feed them to [`Self::record_at`] on the hot path.
    pub fn indexes_of(&self, key: usize) -> Vec<u32> {
        (0..self.depth).map(|r| self.index(r, key) as u32).collect()
    }

    /// [`Self::record`] with the key's bucket indexes precomputed by
    /// [`Self::indexes_of`]: the line-rate path does no hashing per flow,
    /// just `2 × depth` bucket touches.
    #[inline]
    pub fn record_at(&mut self, indexes: &[u32], bytes: u64) {
        debug_assert_eq!(indexes.len(), self.depth);
        let mut est = u64::MAX;
        for (r, &i) in indexes.iter().enumerate() {
            est = est.min(self.buckets[r * self.width + i as usize]);
        }
        let target = est.saturating_add(bytes);
        for (r, &i) in indexes.iter().enumerate() {
            let b = &mut self.buckets[r * self.width + i as usize];
            if *b == 0 && target > 0 {
                self.occupied += 1;
            }
            *b = (*b).max(target);
        }
        self.total = self.total.saturating_add(bytes);
    }

    /// Point estimate for `key`: the minimum of its buckets. One-sided —
    /// always `>=` the true total recorded for `key`.
    pub fn estimate(&self, key: usize) -> u64 {
        (0..self.depth)
            .map(|r| self.buckets[r * self.width + self.index(r, key)])
            .min()
            .expect("depth > 0")
    }

    /// Total bytes recorded (the `N` of the `εN` guarantee).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The classical per-query overestimate scale: `ε = e / width`. With
    /// probability `1 − δ` a point estimate exceeds the truth by at most
    /// `ε · total()`.
    pub fn epsilon(&self) -> f64 {
        std::f64::consts::E / self.width as f64
    }

    /// The classical failure probability: `δ = e^(−depth)`.
    pub fn delta(&self) -> f64 {
        (-(self.depth as f64)).exp()
    }

    /// Deterministic overestimate bound over an enumerable key universe
    /// `0..keys`: for each key, the minimum over rows of the summed point
    /// estimates of the *other* keys sharing its bucket. Since every point
    /// estimate is `>=` its true count, this dominates the true collision
    /// mass in the key's best row, which in turn bounds the overestimate —
    /// a hard guarantee, unlike the probabilistic `εN`.
    pub fn collision_bound(&self, keys: usize) -> u64 {
        let est: Vec<u64> = (0..keys).map(|k| self.estimate(k)).collect();
        let mut worst = 0u64;
        for k in 0..keys {
            let per_key = (0..self.depth)
                .map(|r| {
                    let target = self.index(r, k);
                    (0..keys)
                        .filter(|&j| j != k && self.index(r, j) == target)
                        .fold(0u64, |acc, j| acc.saturating_add(est[j]))
                })
                .min()
                .expect("depth > 0");
            worst = worst.max(per_key);
        }
        worst
    }

    /// Fraction of nonzero buckets, in permille. Maintained incrementally
    /// on record, so this is O(1) — cheap enough to publish per batch.
    pub fn saturation_permille(&self) -> u64 {
        (self.occupied as u64 * 1000) / self.buckets.len() as u64
    }

    /// Zero every bucket, keeping the seeds (and therefore the collision
    /// structure). Line-rate deployments recycle the sketch between
    /// observation windows instead of reallocating.
    pub fn clear(&mut self) {
        self.buckets.fill(0);
        self.occupied = 0;
        self.total = 0;
    }
}

/// A streaming attribution store: one [`CountMinSketch`] per configuration,
/// keyed by link id. Memory is `configs × width × depth` counters
/// regardless of how many links exist — the line-rate trade.
#[derive(Debug, Clone)]
pub struct SketchAccumulator {
    num_links: usize,
    depth: usize,
    /// Bucket indexes per link, row-major (`num_links × depth`). Link ids
    /// are a tiny enumerable universe and the sketches share seeds, so the
    /// hot record path never hashes.
    link_indexes: Vec<u32>,
    sketches: Vec<CountMinSketch>,
}

impl SketchAccumulator {
    /// One `width × depth` sketch per configuration. All sketches share
    /// hash seeds (derived from `seed`), so the collision structure — and
    /// therefore the error bound — is uniform across configurations.
    ///
    /// # Panics
    /// Panics if `width` or `depth` is zero.
    pub fn new(
        num_configs: usize,
        num_links: usize,
        width: usize,
        depth: usize,
        seed: u64,
    ) -> SketchAccumulator {
        let proto = CountMinSketch::new(width, depth, seed);
        let link_indexes = (0..num_links).flat_map(|k| proto.indexes_of(k)).collect();
        SketchAccumulator {
            num_links,
            depth,
            link_indexes,
            sketches: (0..num_configs)
                .map(|_| CountMinSketch::new(width, depth, seed))
                .collect(),
        }
    }

    /// The per-configuration sketches (read-only).
    pub fn sketches(&self) -> &[CountMinSketch] {
        &self.sketches
    }

    /// Zero every configuration's sketch, keeping seeds and the
    /// precomputed link index table — the steady-state reset between
    /// observation windows.
    pub fn clear(&mut self) {
        for s in &mut self.sketches {
            s.clear();
        }
    }

    /// The worst classical `εN` bound across configurations (probabilistic,
    /// holds per query with probability `1 − δ`). [`Self::error_bound`]
    /// reports the *deterministic* enumeration bound instead; this one
    /// exists so callers can report both.
    pub fn epsilon_n_bound(&self) -> u64 {
        self.sketches
            .iter()
            .map(|s| (s.epsilon() * s.total() as f64).ceil() as u64)
            .max()
            .unwrap_or(0)
    }
}

impl VolumeAccumulator for SketchAccumulator {
    fn num_configs(&self) -> usize {
        self.sketches.len()
    }

    fn num_links(&self) -> usize {
        self.num_links
    }

    fn record(&mut self, config: usize, link: LinkId, bytes: u64) {
        let start = link.us() * self.depth;
        self.sketches[config].record_at(&self.link_indexes[start..start + self.depth], bytes);
    }

    fn volume(&self, config: usize, link: LinkId) -> u64 {
        self.sketches[config].estimate(link.us())
    }

    fn error_bound(&self) -> u64 {
        self.sketches
            .iter()
            .map(|s| s.collision_bound(self.num_links))
            .max()
            .unwrap_or(0)
    }

    fn saturation_permille(&self) -> Option<u64> {
        self.sketches
            .iter()
            .map(CountMinSketch::saturation_permille)
            .max()
    }
}

// ---------------------------------------------------------------------------
// Batched dense counters
// ---------------------------------------------------------------------------

/// Independent scratch lanes per link on the batched ingest path: heavy
/// hitters spread across lanes instead of serializing on one add chain,
/// and the fold loop is a contiguous sum the compiler can vectorize.
const LANES: usize = 8;

/// Exact dense per-link counters with a batched ingest path: each flow
/// batch lands in an L1-resident scratch of [`LANES`] u64 lanes per link,
/// folded into the main rows once per batch. `record` remains a direct
/// single-counter add; `error_bound` is 0.
#[derive(Debug, Clone)]
pub struct BatchedDenseAccumulator {
    num_configs: usize,
    num_links: usize,
    rows: Vec<u64>,
    scratch: Vec<u64>,
}

impl BatchedDenseAccumulator {
    /// A zeroed `num_configs × num_links` counter matrix.
    pub fn new(num_configs: usize, num_links: usize) -> BatchedDenseAccumulator {
        BatchedDenseAccumulator {
            num_configs,
            num_links,
            rows: vec![0; num_configs * num_links],
            scratch: vec![0; num_links * LANES],
        }
    }

    /// Zero every counter (the between-windows reset, matching
    /// [`SketchAccumulator::clear`]).
    pub fn clear(&mut self) {
        self.rows.fill(0);
        self.scratch.fill(0);
    }
}

impl VolumeAccumulator for BatchedDenseAccumulator {
    fn num_configs(&self) -> usize {
        self.num_configs
    }

    fn num_links(&self) -> usize {
        self.num_links
    }

    fn record(&mut self, config: usize, link: LinkId, bytes: u64) {
        self.rows[config * self.num_links + link.us()] += bytes;
    }

    fn volume(&self, config: usize, link: LinkId) -> u64 {
        self.rows[config * self.num_links + link.us()]
    }

    fn error_bound(&self) -> u64 {
        0
    }

    fn ingest(&mut self, config: usize, catchments: &Catchments, flows: &[Flow]) {
        let width = self.num_links;
        let mut bytes = 0u64;
        let mut unattributed = 0u64;
        for (i, f) in flows.iter().enumerate() {
            bytes += f.bytes;
            let link = if f.src_as.us() < catchments.len() {
                catchments.get(f.src_as)
            } else {
                None
            };
            match link {
                Some(l) if l.us() < width => {
                    self.scratch[l.us() * LANES + (i % LANES)] += f.bytes;
                }
                _ => unattributed += 1,
            }
        }
        for l in 0..width {
            let lanes = &mut self.scratch[l * LANES..(l + 1) * LANES];
            let sum: u64 = lanes.iter().sum();
            lanes.fill(0);
            self.rows[config * width + l] += sum;
        }
        publish_ingest_metrics(flows.len() as u64, bytes, unattributed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trackdown_topology::AsIndex;

    fn catchments(n: usize, links: usize) -> Catchments {
        let mut c = Catchments::unassigned(n);
        for i in 0..n {
            let link = if i % 7 == 6 {
                None
            } else {
                Some(LinkId((i % links) as u8))
            };
            c.set(AsIndex(i as u32), link);
        }
        c
    }

    fn flows(n: usize) -> Vec<Flow> {
        (0..n)
            .map(|i| Flow {
                src_as: AsIndex(i as u32),
                claimed_ip: 0xCB00_7101,
                dst_ip: 0xB8A4_E001,
                packets: 1,
                bytes: (i as u64 % 97) * 64 + 64,
                spoofed: true,
            })
            .collect()
    }

    #[test]
    fn sketch_estimates_are_one_sided() {
        let mut s = CountMinSketch::new(4, 3, 42);
        let truth: Vec<u64> = (0..16u64).map(|k| k * 100 + 1).collect();
        for (k, &v) in truth.iter().enumerate() {
            s.record(k, v);
        }
        let bound = s.collision_bound(truth.len());
        for (k, &v) in truth.iter().enumerate() {
            let est = s.estimate(k);
            assert!(est >= v, "underestimate at key {k}: {est} < {v}");
            assert!(
                est - v <= bound,
                "overestimate at key {k} beyond the hard bound: {} > {bound}",
                est - v
            );
        }
    }

    #[test]
    fn wide_sketch_is_effectively_exact() {
        // With width far above the key count and several rows, some row
        // usually isolates each key; the estimate then equals the truth
        // and the enumerated bound reports exactly how much residue the
        // collisions left.
        let mut s = CountMinSketch::new(256, 4, 7);
        for k in 0..8usize {
            s.record(k, 1000 + k as u64);
        }
        let bound = s.collision_bound(8);
        for k in 0..8usize {
            assert!(s.estimate(k) - (1000 + k as u64) <= bound);
        }
        assert_eq!(s.total(), (0..8u64).map(|k| 1000 + k).sum::<u64>());
    }

    #[test]
    fn conservative_update_beats_plain_addition() {
        // Width 1: every key shares the single bucket per row. A plain CMS
        // would report the grand total for every key; conservative update
        // keeps the bucket at the largest single point estimate.
        let mut s = CountMinSketch::new(1, 2, 0);
        s.record(0, 10);
        s.record(1, 10);
        s.record(0, 10);
        // Plain CMS would say 30 for both keys. Conservative update: after
        // the second record(0), estimate(0) was 20, bucket raised to 30.
        assert!(s.estimate(0) <= 30);
        assert!(s.estimate(0) >= 20, "never below the true count");
        let bound = s.collision_bound(2);
        for (k, truth) in [(0usize, 20u64), (1, 10)] {
            assert!(s.estimate(k) >= truth);
            assert!(s.estimate(k) - truth <= bound);
        }
    }

    #[test]
    fn accumulator_ingest_matches_dense_reference() {
        let n = 200;
        let cat = catchments(n, 5);
        let fl = flows(n);
        let mut dense = vec![vec![0u64; 5]; 3];
        let mut batched = BatchedDenseAccumulator::new(3, 5);
        let mut sketch = SketchAccumulator::new(3, 5, 64, 4, 9);
        for cfg in 0..3 {
            dense.as_mut_slice().ingest(cfg, &cat, &fl);
            ingest_stream(&mut batched, cfg, &cat, &fl, 17);
            sketch.ingest(cfg, &cat, &fl);
        }
        let bound = sketch.error_bound();
        for cfg in 0..3 {
            for l in 0..5 {
                let link = LinkId(l as u8);
                let exact = dense.as_slice().volume(cfg, link);
                assert_eq!(batched.volume(cfg, link), exact, "batched dense is exact");
                let est = sketch.volume(cfg, link);
                assert!(est >= exact, "sketch underestimated {cfg}/{l}");
                assert!(est - exact <= bound, "sketch bound violated {cfg}/{l}");
            }
            assert_eq!(batched.dense_row(cfg), dense[cfg]);
        }
        assert_eq!(dense.as_slice().error_bound(), 0);
        assert_eq!(batched.error_bound(), 0);
    }

    #[test]
    fn ingest_counts_unattributed_flows() {
        let before = trackdown_obs::global()
            .counter("traffic.ingest.unattributed")
            .get();
        let n = 70;
        let cat = catchments(n, 3);
        let fl = flows(n);
        let mut acc = BatchedDenseAccumulator::new(1, 3);
        acc.ingest(0, &cat, &fl);
        let after = trackdown_obs::global()
            .counter("traffic.ingest.unattributed")
            .get();
        // Every 7th AS is unassigned in the fixture (70 / 7 = 10 flows).
        assert!(after - before >= 10, "unattributed counter not maintained");
    }

    #[test]
    fn saturation_gauge_tracks_occupancy() {
        let cat = catchments(40, 4);
        let fl = flows(40);
        let mut sk = SketchAccumulator::new(1, 4, 8, 2, 3);
        sk.ingest(0, &cat, &fl);
        let gauge = trackdown_obs::global()
            .gauge("traffic.sketch.saturation_permille")
            .get();
        let direct = sk.saturation_permille().unwrap();
        assert!(direct > 0);
        assert!(gauge > 0, "saturation gauge never published");
        assert!(direct <= 1000);
    }

    #[test]
    #[should_panic(expected = "width must be positive")]
    fn zero_width_sketch_rejected() {
        let _ = CountMinSketch::new(0, 2, 1);
    }
}
