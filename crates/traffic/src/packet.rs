//! Minimal IPv4 + UDP packet codec.
//!
//! Amplification attacks are UDP packets with a forged source address: the
//! attacker sends a small query to a reflector with `src = victim`, and the
//! large response floods the victim. A honeypot deployment needs to parse
//! exactly these packets, so the codec implements real IPv4 header rules
//! (IHL, total length, header checksum) and UDP framing over `bytes`.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// IPv4 protocol number for UDP.
pub const PROTO_UDP: u8 = 17;

/// Errors raised while decoding a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PacketError {
    /// Fewer bytes than the fixed IPv4 header.
    Truncated,
    /// Version field is not 4.
    BadVersion(u8),
    /// IHL smaller than 5 words or larger than the buffer.
    BadIhl(u8),
    /// Total-length field disagrees with the buffer.
    BadTotalLength {
        /// Length claimed by the header.
        claimed: u16,
        /// Bytes actually available.
        available: usize,
    },
    /// Header checksum mismatch.
    BadChecksum {
        /// Checksum in the header.
        got: u16,
        /// Checksum recomputed over the header.
        want: u16,
    },
    /// The payload is not UDP.
    NotUdp(u8),
    /// UDP length field inconsistent with the datagram.
    BadUdpLength(u16),
    /// UDP checksum mismatch against the pseudo-header.
    BadUdpChecksum {
        /// Checksum in the datagram.
        got: u16,
        /// Checksum recomputed.
        want: u16,
    },
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated => write!(f, "packet truncated"),
            PacketError::BadVersion(v) => write!(f, "IP version {v} != 4"),
            PacketError::BadIhl(v) => write!(f, "bad IHL {v}"),
            PacketError::BadTotalLength { claimed, available } => {
                write!(f, "total length {claimed} but {available} bytes available")
            }
            PacketError::BadChecksum { got, want } => {
                write!(f, "header checksum {got:#06x} != {want:#06x}")
            }
            PacketError::NotUdp(p) => write!(f, "protocol {p} is not UDP"),
            PacketError::BadUdpLength(l) => write!(f, "bad UDP length {l}"),
            PacketError::BadUdpChecksum { got, want } => {
                write!(f, "UDP checksum {got:#06x} != {want:#06x}")
            }
        }
    }
}

impl std::error::Error for PacketError {}

/// A decoded (or to-be-encoded) UDP-in-IPv4 packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UdpPacket {
    /// Source IPv4 address (the *spoofed* victim address in attack
    /// traffic), big-endian.
    pub src_ip: u32,
    /// Destination IPv4 address (reflector / honeypot), big-endian.
    pub dst_ip: u32,
    /// IPv4 TTL.
    pub ttl: u8,
    /// UDP source port.
    pub src_port: u16,
    /// UDP destination port (e.g. 123 for NTP amplification).
    pub dst_port: u16,
    /// UDP payload.
    pub payload: Bytes,
}

/// RFC 1071 internet checksum over a byte slice.
fn internet_checksum(data: &[u8]) -> u16 {
    let mut sum = 0u32;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

impl UdpPacket {
    /// Total on-the-wire size: 20-byte IPv4 header + 8-byte UDP header +
    /// payload.
    pub fn wire_len(&self) -> usize {
        20 + 8 + self.payload.len()
    }

    /// RFC 768 UDP checksum over the IPv4 pseudo-header, UDP header, and
    /// payload. Returns the on-the-wire value (0 is transmitted as 0xFFFF).
    pub fn udp_checksum(&self) -> u16 {
        let udp_len = (8 + self.payload.len()) as u16;
        let mut buf = Vec::with_capacity(12 + 8 + self.payload.len());
        // Pseudo-header: src, dst, zero, protocol, UDP length.
        buf.extend_from_slice(&self.src_ip.to_be_bytes());
        buf.extend_from_slice(&self.dst_ip.to_be_bytes());
        buf.push(0);
        buf.push(PROTO_UDP);
        buf.extend_from_slice(&udp_len.to_be_bytes());
        // UDP header with zero checksum field.
        buf.extend_from_slice(&self.src_port.to_be_bytes());
        buf.extend_from_slice(&self.dst_port.to_be_bytes());
        buf.extend_from_slice(&udp_len.to_be_bytes());
        buf.extend_from_slice(&[0, 0]);
        buf.extend_from_slice(&self.payload);
        let sum = internet_checksum(&buf);
        // An all-zero computed checksum is transmitted as all-ones.
        if sum == 0 {
            0xFFFF
        } else {
            sum
        }
    }

    /// Encode to wire format with a valid IPv4 header checksum.
    ///
    /// # Panics
    /// Panics if the payload is too large for a 16-bit total length.
    pub fn encode(&self) -> Bytes {
        let total_len = self.wire_len();
        assert!(total_len <= u16::MAX as usize, "payload too large");
        let udp_len = (8 + self.payload.len()) as u16;
        let mut buf = BytesMut::with_capacity(total_len);
        buf.put_u8(0x45); // version 4, IHL 5
        buf.put_u8(0); // DSCP/ECN
        buf.put_u16(total_len as u16);
        buf.put_u16(0); // identification
        buf.put_u16(0x4000); // don't fragment
        buf.put_u8(self.ttl);
        buf.put_u8(PROTO_UDP);
        buf.put_u16(0); // checksum placeholder
        buf.put_u32(self.src_ip);
        buf.put_u32(self.dst_ip);
        let csum = internet_checksum(&buf[..20]);
        buf[10..12].copy_from_slice(&csum.to_be_bytes());
        buf.put_u16(self.src_port);
        buf.put_u16(self.dst_port);
        buf.put_u16(udp_len);
        buf.put_u16(self.udp_checksum());
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Decode from wire format, validating version, IHL, lengths, and the
    /// IPv4 header checksum.
    pub fn decode(mut data: Bytes) -> Result<UdpPacket, PacketError> {
        if data.len() < 20 {
            return Err(PacketError::Truncated);
        }
        let vihl = data[0];
        let version = vihl >> 4;
        if version != 4 {
            return Err(PacketError::BadVersion(version));
        }
        let ihl = vihl & 0x0f;
        let header_len = ihl as usize * 4;
        if ihl < 5 || data.len() < header_len {
            return Err(PacketError::BadIhl(ihl));
        }
        let claimed = u16::from_be_bytes([data[2], data[3]]);
        if (claimed as usize) > data.len() || (claimed as usize) < header_len + 8 {
            return Err(PacketError::BadTotalLength {
                claimed,
                available: data.len(),
            });
        }
        let got = u16::from_be_bytes([data[10], data[11]]);
        let mut hdr = data[..header_len].to_vec();
        hdr[10] = 0;
        hdr[11] = 0;
        let want = internet_checksum(&hdr);
        if got != want {
            return Err(PacketError::BadChecksum { got, want });
        }
        let proto = data[9];
        if proto != PROTO_UDP {
            return Err(PacketError::NotUdp(proto));
        }
        let ttl = data[8];
        let src_ip = u32::from_be_bytes([data[12], data[13], data[14], data[15]]);
        let dst_ip = u32::from_be_bytes([data[16], data[17], data[18], data[19]]);
        data.advance(header_len);
        let src_port = data.get_u16();
        let dst_port = data.get_u16();
        let udp_len = data.get_u16();
        let udp_csum = data.get_u16();
        if (udp_len as usize) < 8 || udp_len as usize - 8 > data.len() {
            return Err(PacketError::BadUdpLength(udp_len));
        }
        let payload = data.slice(..udp_len as usize - 8);
        let pkt = UdpPacket {
            src_ip,
            dst_ip,
            ttl,
            src_port,
            dst_port,
            payload,
        };
        // UDP checksum is optional over IPv4 (0 = not computed); when
        // present it must verify against the pseudo-header.
        if udp_csum != 0 {
            let want = pkt.udp_checksum();
            if udp_csum != want {
                return Err(PacketError::BadUdpChecksum {
                    got: udp_csum,
                    want,
                });
            }
        }
        Ok(pkt)
    }
}

/// Well-known amplification vector ports, for realistic example traffic.
pub mod amp_ports {
    /// NTP `monlist` (the 400 Gbps CloudFlare attack vector).
    pub const NTP: u16 = 123;
    /// DNS open resolvers.
    pub const DNS: u16 = 53;
    /// memcached over UDP.
    pub const MEMCACHED: u16 = 11211;
    /// CharGen.
    pub const CHARGEN: u16 = 19;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> UdpPacket {
        UdpPacket {
            src_ip: u32::from_be_bytes([203, 0, 113, 7]), // spoofed victim
            dst_ip: u32::from_be_bytes([184, 164, 224, 1]),
            ttl: 64,
            src_port: 4444,
            dst_port: amp_ports::NTP,
            payload: Bytes::from_static(b"\x17\x00\x03\x2a\x00\x00\x00\x00"),
        }
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let wire = p.encode();
        assert_eq!(wire.len(), p.wire_len());
        let q = UdpPacket::decode(wire).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let p = UdpPacket {
            payload: Bytes::new(),
            ..sample()
        };
        assert_eq!(UdpPacket::decode(p.encode()).unwrap(), p);
    }

    #[test]
    fn checksum_detects_corruption() {
        let wire = sample().encode();
        let mut corrupted = wire.to_vec();
        corrupted[14] ^= 0xff; // flip a source-address byte
        match UdpPacket::decode(Bytes::from(corrupted)) {
            Err(PacketError::BadChecksum { .. }) => {}
            other => panic!("expected checksum error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_truncated() {
        assert_eq!(
            UdpPacket::decode(Bytes::from_static(&[0x45, 0, 0])),
            Err(PacketError::Truncated)
        );
    }

    #[test]
    fn rejects_wrong_version() {
        let mut wire = sample().encode().to_vec();
        wire[0] = 0x65; // version 6
        assert!(matches!(
            UdpPacket::decode(Bytes::from(wire)),
            Err(PacketError::BadVersion(6))
        ));
    }

    #[test]
    fn rejects_non_udp() {
        let mut wire = sample().encode().to_vec();
        wire[9] = 6; // TCP
                     // Fix up checksum so we reach the protocol check.
        wire[10] = 0;
        wire[11] = 0;
        let csum = internet_checksum(&wire[..20]);
        wire[10..12].copy_from_slice(&csum.to_be_bytes());
        assert!(matches!(
            UdpPacket::decode(Bytes::from(wire)),
            Err(PacketError::NotUdp(6))
        ));
    }

    #[test]
    fn rejects_bad_total_length() {
        let mut wire = sample().encode().to_vec();
        wire[2] = 0xff;
        wire[3] = 0xff;
        wire[10] = 0;
        wire[11] = 0;
        let csum = internet_checksum(&wire[..20]);
        wire[10..12].copy_from_slice(&csum.to_be_bytes());
        assert!(matches!(
            UdpPacket::decode(Bytes::from(wire)),
            Err(PacketError::BadTotalLength { .. })
        ));
    }

    #[test]
    fn udp_checksum_verifies_and_detects_payload_corruption() {
        let p = sample();
        let wire = p.encode();
        // Valid checksum decodes fine (covered by roundtrip), corrupting a
        // payload byte must now be caught by the UDP checksum (the IPv4
        // header checksum does not cover the payload).
        let mut corrupted = wire.to_vec();
        let last = corrupted.len() - 1;
        corrupted[last] ^= 0x55;
        match UdpPacket::decode(Bytes::from(corrupted)) {
            Err(PacketError::BadUdpChecksum { .. }) => {}
            other => panic!("payload corruption undetected: {other:?}"),
        }
        // A zero on-the-wire checksum means "not computed" and is accepted.
        let mut no_csum = wire.to_vec();
        no_csum[26] = 0;
        no_csum[27] = 0;
        let decoded = UdpPacket::decode(Bytes::from(no_csum)).unwrap();
        assert_eq!(decoded, p);
        // The computed checksum is never transmitted as zero.
        assert_ne!(p.udp_checksum(), 0);
    }

    #[test]
    fn checksum_known_vector() {
        // RFC 1071 example-style check: checksum of a buffer containing
        // its own checksum field folds to zero.
        let wire = sample().encode();
        assert_eq!(internet_checksum(&wire[..20]), 0);
    }
}
