//! Flow records: aggregated traffic from source ASes toward the origin
//! prefix, with ground-truth spoofing labels for evaluation.
//!
//! Addresses use a synthetic-but-consistent scheme: AS index `i` owns the
//! /24 `10.(i>>8).(i&0xff).0`, so claimed source addresses can be mapped
//! back to a claimed AS exactly like an IP-to-AS database would.

use crate::packet::{amp_ports, UdpPacket};
use crate::placement::PlacedSources;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use trackdown_bgp::Prefix;
use trackdown_topology::AsIndex;

/// The synthetic address block assigned to an AS index.
///
/// # Panics
/// Panics if `i` exceeds the 16-bit AS-index space of the scheme.
pub fn as_prefix(i: AsIndex) -> Prefix {
    assert!(i.0 < 1 << 16, "AS index {} too large for 10.x.y.0/24", i.0);
    Prefix::new([10, (i.0 >> 8) as u8, (i.0 & 0xff) as u8, 0], 24)
}

/// An address inside an AS's synthetic block.
pub fn as_address(i: AsIndex, host: u8) -> u32 {
    as_prefix(i).addr(host as u32)
}

/// Map an address back to the AS claiming it, if it is in the synthetic
/// 10/8 scheme.
pub fn claimed_as(ip: u32) -> Option<AsIndex> {
    let o = ip.to_be_bytes();
    if o[0] != 10 {
        return None;
    }
    Some(AsIndex(((o[1] as u32) << 8) | o[2] as u32))
}

/// One aggregated flow toward the origin prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Flow {
    /// The AS that actually emitted the packets.
    pub src_as: AsIndex,
    /// Source address claimed in the packets (forged for spoofed flows).
    pub claimed_ip: u32,
    /// Destination address inside the origin prefix.
    pub dst_ip: u32,
    /// Packet count.
    pub packets: u64,
    /// Byte count.
    pub bytes: u64,
    /// Ground truth: was the source address forged?
    pub spoofed: bool,
}

impl Flow {
    /// A representative wire packet for this flow (first packet), usable
    /// with the honeypot's packet-level interface.
    pub fn sample_packet(&self) -> UdpPacket {
        UdpPacket {
            src_ip: self.claimed_ip,
            dst_ip: self.dst_ip,
            ttl: 251, // a few hops consumed
            src_port: 4000 + (self.src_as.0 % 2000) as u16,
            dst_port: amp_ports::NTP,
            payload: Bytes::from_static(b"\x17\x00\x03\x2a\x00\x00\x00\x00"),
        }
    }
}

/// Parameters for flow generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowConfig {
    /// Queries each spoofing source emits during the observation window.
    pub queries_per_source: u64,
    /// Bytes per query packet (amplification queries are small).
    pub bytes_per_query: u64,
}

impl Default for FlowConfig {
    fn default() -> FlowConfig {
        FlowConfig {
            queries_per_source: 1_000,
            bytes_per_query: 64,
        }
    }
}

/// Generate the spoofed amplification flows for a placement: every source
/// AS emits queries claiming the victim's address.
pub fn spoofed_flows(
    placed: &PlacedSources,
    victim_ip: u32,
    honeypot_prefix: Prefix,
    cfg: &FlowConfig,
) -> Vec<Flow> {
    placed
        .source_ases()
        .map(|i| {
            let sources = placed.counts[i.us()] as u64;
            let packets = sources * cfg.queries_per_source;
            Flow {
                src_as: i,
                claimed_ip: victim_ip,
                dst_ip: honeypot_prefix.addr(1),
                packets,
                bytes: packets * cfg.bytes_per_query,
                spoofed: true,
            }
        })
        .collect()
}

/// Iterate over a flow list in fixed-size batches — the unit the
/// streaming accumulators in [`crate::sketch`] ingest (the last batch may
/// be shorter).
///
/// # Panics
/// Panics if `batch` is zero.
pub fn flow_batches(flows: &[Flow], batch: usize) -> impl Iterator<Item = &[Flow]> {
    assert!(batch > 0, "flow batch size must be positive");
    flows.chunks(batch)
}

/// Generate honest background flows from a set of ASes (source addresses
/// inside each AS's own block). Used by the classifier evaluation; an
/// amplification honeypot proper receives no such traffic.
pub fn legitimate_flows(
    sources: &[AsIndex],
    dst_prefix: Prefix,
    packets_per_source: u64,
    bytes_per_packet: u64,
) -> Vec<Flow> {
    sources
        .iter()
        .map(|&i| Flow {
            src_as: i,
            claimed_ip: as_address(i, 1),
            dst_ip: dst_prefix.addr(2),
            packets: packets_per_source,
            bytes: packets_per_source * bytes_per_packet,
            spoofed: false,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{place_sources, SourcePlacement};

    #[test]
    fn address_scheme_roundtrips() {
        for idx in [0u32, 1, 255, 256, 65_535] {
            let i = AsIndex(idx);
            let ip = as_address(i, 9);
            assert_eq!(claimed_as(ip), Some(i));
            assert!(as_prefix(i).contains(ip));
        }
        // Non-10/8 addresses have no claimed AS.
        assert_eq!(claimed_as(u32::from_be_bytes([203, 0, 113, 1])), None);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn address_scheme_rejects_large_index() {
        let _ = as_prefix(AsIndex(1 << 16));
    }

    #[test]
    fn spoofed_flows_cover_all_source_ases() {
        let cands: Vec<AsIndex> = (0..40).map(AsIndex).collect();
        let placed = place_sources(40, &cands, SourcePlacement::Uniform { total: 100 }, 3);
        let hp = Prefix::new([184, 164, 224, 0], 24);
        let victim = u32::from_be_bytes([203, 0, 113, 7]);
        let flows = spoofed_flows(&placed, victim, hp, &FlowConfig::default());
        assert_eq!(flows.len(), placed.num_source_ases());
        let total_packets: u64 = flows.iter().map(|f| f.packets).sum();
        assert_eq!(total_packets, placed.total() * 1_000);
        for f in &flows {
            assert!(f.spoofed);
            assert_eq!(f.claimed_ip, victim);
            assert!(hp.contains(f.dst_ip));
            assert_eq!(f.bytes, f.packets * 64);
        }
    }

    #[test]
    fn legitimate_flows_claim_their_own_block() {
        let srcs = vec![AsIndex(5), AsIndex(9)];
        let flows = legitimate_flows(&srcs, Prefix::new([184, 164, 224, 0], 24), 10, 500);
        assert_eq!(flows.len(), 2);
        for (f, &s) in flows.iter().zip(&srcs) {
            assert!(!f.spoofed);
            assert_eq!(claimed_as(f.claimed_ip), Some(s));
        }
    }

    #[test]
    fn sample_packet_is_decodable() {
        let f = Flow {
            src_as: AsIndex(7),
            claimed_ip: u32::from_be_bytes([203, 0, 113, 7]),
            dst_ip: u32::from_be_bytes([184, 164, 224, 1]),
            packets: 1,
            bytes: 64,
            spoofed: true,
        };
        let p = f.sample_packet();
        let decoded = UdpPacket::decode(p.encode()).unwrap();
        assert_eq!(decoded.src_ip, f.claimed_ip);
        assert_eq!(decoded.dst_port, amp_ports::NTP);
    }
}
