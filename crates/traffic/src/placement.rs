//! Attacker placement: which ASes host the machines sending spoofed
//! packets.
//!
//! §V-D of the paper simulates three scenarios, reproduced here:
//!
//! * **single source** — one source in an AS chosen at random (the common
//!   amplification-attack case per AmpPot);
//! * **uniform** — sources spread uniformly across ASes;
//! * **Pareto** — heavy-tailed placement shaped so 80 % of sources sit in
//!   20 % of ASes.
//!
//! "We assume the volume of spoofed traffic originated in an AS is
//! proportional to the number of sources in it."

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use trackdown_topology::AsIndex;

/// The Pareto shape α for which the top 20 % of draws hold 80 % of the
/// mass: α = ln 5 / ln 4 ≈ 1.161.
pub fn pareto_shape_80_20() -> f64 {
    5f64.ln() / 4f64.ln()
}

/// Distribution of spoofing sources across ASes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SourcePlacement {
    /// A single source in one AS chosen uniformly at random.
    Single,
    /// `total` sources placed independently and uniformly across ASes.
    Uniform {
        /// Number of sources to place.
        total: usize,
    },
    /// `total` sources placed by per-AS Pareto weights with shape `alpha`.
    Pareto {
        /// Number of sources to place.
        total: usize,
        /// Pareto shape; use [`pareto_shape_80_20`] for the paper's 80/20.
        alpha: f64,
    },
}

/// A concrete placement: number of spoofing sources per AS.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedSources {
    /// `counts[i]` = sources hosted in AS index `i`.
    pub counts: Vec<u32>,
}

impl PlacedSources {
    /// Total number of sources.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|&c| c as u64).sum()
    }

    /// ASes hosting at least one source.
    pub fn source_ases(&self) -> impl Iterator<Item = AsIndex> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, _)| AsIndex(i as u32))
    }

    /// Number of ASes hosting at least one source.
    pub fn num_source_ases(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Spoofed traffic volume per AS, proportional to source count.
    pub fn volume_per_as(&self, bytes_per_source: u64) -> Vec<u64> {
        self.counts
            .iter()
            .map(|&c| c as u64 * bytes_per_source)
            .collect()
    }
}

/// Place sources over `candidates` (usually every AS in the topology, or
/// only stubs for a stricter scenario) according to `placement`.
///
/// # Panics
/// Panics if `candidates` is empty or `n_ases` cannot hold a candidate.
pub fn place_sources(
    n_ases: usize,
    candidates: &[AsIndex],
    placement: SourcePlacement,
    seed: u64,
) -> PlacedSources {
    assert!(!candidates.is_empty(), "no candidate ASes");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut counts = vec![0u32; n_ases];
    match placement {
        SourcePlacement::Single => {
            let pick = candidates[rng.random_range(0..candidates.len())];
            counts[pick.us()] = 1;
        }
        SourcePlacement::Uniform { total } => {
            for _ in 0..total {
                let pick = candidates[rng.random_range(0..candidates.len())];
                counts[pick.us()] += 1;
            }
        }
        SourcePlacement::Pareto { total, alpha } => {
            assert!(alpha > 0.0, "Pareto shape must be positive");
            // Per-AS weight: inverse-CDF sample of Pareto(xm=1, alpha).
            let weights: Vec<f64> = candidates
                .iter()
                .map(|_| {
                    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
                    u.powf(-1.0 / alpha)
                })
                .collect();
            let sum: f64 = weights.iter().sum();
            // Multinomial placement by cumulative weights.
            let mut cumulative = Vec::with_capacity(weights.len());
            let mut acc = 0.0;
            for w in &weights {
                acc += w / sum;
                cumulative.push(acc);
            }
            for _ in 0..total {
                let roll: f64 = rng.random();
                let k = cumulative
                    .partition_point(|&c| c < roll)
                    .min(candidates.len() - 1);
                counts[candidates[k].us()] += 1;
            }
        }
    }
    PlacedSources { counts }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates(n: usize) -> Vec<AsIndex> {
        (0..n as u32).map(AsIndex).collect()
    }

    #[test]
    fn single_places_exactly_one() {
        let p = place_sources(100, &candidates(100), SourcePlacement::Single, 7);
        assert_eq!(p.total(), 1);
        assert_eq!(p.num_source_ases(), 1);
    }

    #[test]
    fn uniform_places_total() {
        let p = place_sources(
            50,
            &candidates(50),
            SourcePlacement::Uniform { total: 500 },
            8,
        );
        assert_eq!(p.total(), 500);
        // With 500 sources over 50 ASes, nearly every AS is hit.
        assert!(p.num_source_ases() > 40);
    }

    #[test]
    fn pareto_is_heavy_tailed_80_20() {
        let n = 500;
        let p = place_sources(
            n,
            &candidates(n),
            SourcePlacement::Pareto {
                total: 20_000,
                alpha: pareto_shape_80_20(),
            },
            9,
        );
        assert_eq!(p.total(), 20_000);
        let mut counts: Vec<u32> = p.counts.clone();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top20: u64 = counts[..n / 5].iter().map(|&c| c as u64).sum();
        let share = top20 as f64 / p.total() as f64;
        // The multinomial sampling adds noise; accept a broad 80/20 band.
        assert!((0.6..0.97).contains(&share), "top-20% share = {share}");
    }

    #[test]
    fn uniform_is_not_heavy_tailed() {
        let n = 500;
        let p = place_sources(
            n,
            &candidates(n),
            SourcePlacement::Uniform { total: 20_000 },
            10,
        );
        let mut counts: Vec<u32> = p.counts.clone();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top20: u64 = counts[..n / 5].iter().map(|&c| c as u64).sum();
        let share = top20 as f64 / p.total() as f64;
        assert!(share < 0.35, "uniform top-20% share = {share}");
    }

    #[test]
    fn placement_respects_candidate_set() {
        let cands = vec![AsIndex(3), AsIndex(7)];
        let p = place_sources(10, &cands, SourcePlacement::Uniform { total: 100 }, 11);
        for (i, &c) in p.counts.iter().enumerate() {
            if i != 3 && i != 7 {
                assert_eq!(c, 0);
            }
        }
        assert_eq!(p.total(), 100);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = place_sources(
            20,
            &candidates(20),
            SourcePlacement::Uniform { total: 50 },
            1,
        );
        let b = place_sources(
            20,
            &candidates(20),
            SourcePlacement::Uniform { total: 50 },
            1,
        );
        assert_eq!(a, b);
        let c = place_sources(
            20,
            &candidates(20),
            SourcePlacement::Uniform { total: 50 },
            2,
        );
        assert_ne!(a, c);
    }

    #[test]
    fn volume_proportional_to_sources() {
        let p = PlacedSources {
            counts: vec![0, 2, 5],
        };
        assert_eq!(p.volume_per_as(100), vec![0, 200, 500]);
        assert_eq!(p.total(), 7);
    }

    #[test]
    fn shape_constant_is_80_20() {
        let a = pareto_shape_80_20();
        // P(top 20%) = (0.2)^(1 - 1/α)… verify via the Lorenz-curve
        // identity for Pareto: share of top q = q^(1 - 1/α).
        let share = 0.2f64.powf(1.0 - 1.0 / a);
        assert!((share - 0.8).abs() < 1e-9);
    }
}
