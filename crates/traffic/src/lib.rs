//! # trackdown-traffic
//!
//! The spoofed-traffic substrate: everything between "attackers exist
//! somewhere" and "the origin sees N spoofed bytes on peering link l".
//!
//! * [`placement`] — the paper's §V-D attacker distributions (single
//!   source, uniform, Pareto 80/20);
//! * [`packet`] — a real IPv4+UDP codec for the spoofed amplification
//!   queries a deployment would parse;
//! * [`flow`] — aggregated flow records with ground-truth labels and a
//!   consistent synthetic addressing scheme;
//! * [`honeypot`] — AmpPot-style volume accounting per ingress link;
//! * [`classify`] — the Lichtblau-style valid-source classifier for
//!   production prefixes;
//! * [`reflector`] — the attack triangle (attackers → open reflectors →
//!   victim) with per-protocol amplification factors, contrasting the
//!   victim's view (reflector ASes only) with the origin-side vantage;
//! * [`attribution`] — per-link and per-cluster volume aggregation
//!   (Figure 10's series);
//! * [`sketch`] — streaming volume accumulators for line-rate ingest: a
//!   seeded count-min sketch (conservative update, one-sided error with a
//!   deterministic bound) and exact dense counters with batched folds,
//!   both behind the [`VolumeAccumulator`] trait the localization layer
//!   accepts in place of exact dense rows.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attribution;
pub mod classify;
pub mod flow;
pub mod honeypot;
pub mod packet;
pub mod placement;
pub mod reflector;
pub mod sketch;

pub use attribution::{
    cumulative_volume_by_cluster_size, cumulative_volume_by_cluster_slices, hottest,
    volume_per_link,
};
pub use classify::{ClassifierReport, SpoofClassifier};
pub use flow::{
    as_address, as_prefix, claimed_as, flow_batches, legitimate_flows, spoofed_flows, Flow,
    FlowConfig,
};
pub use honeypot::{Honeypot, HoneypotConfig, HoneypotReport};
pub use packet::{amp_ports, PacketError, UdpPacket};
pub use placement::{pareto_shape_80_20, place_sources, PlacedSources, SourcePlacement};
pub use reflector::{reflect_attack, scatter_reflectors, Reflector, ReflectorKind, VictimReport};
pub use sketch::{
    ingest_stream, BatchedDenseAccumulator, CountMinSketch, SketchAccumulator, VolumeAccumulator,
    DEFAULT_FLOW_BATCH,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use bytes::Bytes;
    use proptest::prelude::*;

    proptest! {
        // Packet encode/decode is a perfect roundtrip for arbitrary
        // headers and payloads.
        #[test]
        fn packet_roundtrip(
            src in any::<u32>(),
            dst in any::<u32>(),
            ttl in 1u8..=255,
            sport in any::<u16>(),
            dport in any::<u16>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let p = UdpPacket {
                src_ip: src,
                dst_ip: dst,
                ttl,
                src_port: sport,
                dst_port: dport,
                payload: Bytes::from(payload),
            };
            prop_assert_eq!(UdpPacket::decode(p.encode()).unwrap(), p);
        }

        // Single-byte corruption anywhere in the IPv4 header is caught
        // (checksum or structural validation).
        #[test]
        fn header_corruption_detected(
            pos in 0usize..20,
            flip in 1u8..=255,
        ) {
            let p = UdpPacket {
                src_ip: 0x0A00_0001,
                dst_ip: 0xB8A4_E001,
                ttl: 64,
                src_port: 1234,
                dst_port: 123,
                payload: Bytes::from_static(b"query"),
            };
            let mut wire = p.encode().to_vec();
            wire[pos] ^= flip;
            let decoded = UdpPacket::decode(Bytes::from(wire));
            prop_assert!(
                decoded.is_err() || decoded.as_ref().unwrap() != &p,
                "corruption at {pos} silently ignored"
            );
        }

        // Placement conserves the requested source count and never uses
        // non-candidate ASes.
        #[test]
        fn placement_conserves_mass(
            seed in any::<u64>(),
            total in 1usize..500,
            n in 2usize..100,
        ) {
            use trackdown_topology::AsIndex;
            let candidates: Vec<AsIndex> =
                (0..n as u32).step_by(2).map(AsIndex).collect();
            for placement in [
                SourcePlacement::Uniform { total },
                SourcePlacement::Pareto { total, alpha: pareto_shape_80_20() },
            ] {
                let p = place_sources(n, &candidates, placement, seed);
                prop_assert_eq!(p.total(), total as u64);
                for (i, &c) in p.counts.iter().enumerate() {
                    if c > 0 {
                        prop_assert!(candidates.contains(&AsIndex(i as u32)));
                    }
                }
            }
        }

        // The honeypot conserves bytes: link sums equal the attributable
        // total.
        #[test]
        fn honeypot_conserves_bytes(
            vols in proptest::collection::vec(0u64..1_000_000, 1..30),
        ) {
            use trackdown_bgp::{Catchments, LinkId};
            use trackdown_topology::AsIndex;
            let n = vols.len();
            let mut c = Catchments::unassigned(n);
            for i in 0..n {
                // Assign alternating links, leave every 5th unassigned.
                let link = if i % 5 == 4 { None } else { Some(LinkId((i % 3) as u8)) };
                c.set(AsIndex(i as u32), link);
            }
            let hp = Honeypot::new(HoneypotConfig::default());
            let dst = hp.config().prefix.addr(1);
            let flows: Vec<Flow> = vols
                .iter()
                .enumerate()
                .map(|(i, &b)| Flow {
                    src_as: AsIndex(i as u32),
                    claimed_ip: 0xCB00_7101,
                    dst_ip: dst,
                    packets: b / 64,
                    bytes: b,
                    spoofed: true,
                })
                .collect();
            let r = hp.observe(&c, 3, &flows);
            let attributable: u64 = vols
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 5 != 4)
                .map(|(_, &b)| b)
                .sum();
            prop_assert_eq!(r.per_link_bytes.iter().sum::<u64>(), attributable);
            prop_assert_eq!(r.total_bytes, attributable);
        }
    }
}
