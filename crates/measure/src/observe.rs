//! Combining BGP and traceroute observations into measured catchments.
//!
//! Implements §IV-c of the paper: every AS seen on a feeder's AS-path or a
//! repaired traceroute votes for the ingress link of that path (BGP's
//! path-vector property makes the sub-path from any on-path AS that AS's
//! own route). When votes conflict — which happens for ~2.28 % of sources
//! in the paper's dataset, mostly from IP-to-AS errors — BGP votes take
//! priority over traceroute votes and the most common catchment wins.

use crate::repair::RepairedPath;
use trackdown_bgp::{Catchments, LinkId, RoutingOutcome};
use trackdown_topology::{AsIndex, Asn, Topology};

/// One AS-path observed at a route collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpObservation {
    /// The feeding AS.
    pub feeder: AsIndex,
    /// AS-level path, feeder first, PoP provider last. The origin ASN and
    /// any poison-sandwich ASes are already stripped: PEERING's `o u o`
    /// convention makes poisoned hops trivially identifiable (§IV-e).
    pub path: Vec<Asn>,
    /// Ingress link of the observed route.
    pub ingress: LinkId,
}

/// Collect the Loc-RIB exports of the feeder ASes.
pub fn collect_bgp_feeds(
    topo: &Topology,
    outcome: &RoutingOutcome,
    feeders: &[AsIndex],
    origin_asn: Asn,
) -> Vec<BgpObservation> {
    feeders
        .iter()
        .filter_map(|&f| {
            outcome.best[f.us()].as_ref().map(|r| {
                let as_path = outcome.path_of(r);
                let poisons = as_path.poisons_of(origin_asn);
                let mut path = vec![topo.asn_of(f)];
                for a in as_path.distinct() {
                    if a != origin_asn && !poisons.contains(&a) {
                        path.push(a);
                    }
                }
                BgpObservation {
                    feeder: f,
                    path,
                    ingress: r.ingress,
                }
            })
        })
        .collect()
}

/// Catchments as measured from the observation plane, with per-source
/// bookkeeping for the visibility analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredCatchments {
    /// The per-AS link assignment the origin infers.
    pub catchments: Catchments,
    /// True when any observation covered the AS.
    pub observed: Vec<bool>,
    /// True when observations disagreed about the AS's catchment.
    pub multi_catchment: Vec<bool>,
}

impl MeasuredCatchments {
    /// Fraction of observed sources that appeared in multiple catchments
    /// (the paper reports 2.28 % on average).
    pub fn multi_catchment_rate(&self) -> f64 {
        let observed = self.observed.iter().filter(|o| **o).count();
        if observed == 0 {
            return 0.0;
        }
        let multi = self
            .multi_catchment
            .iter()
            .zip(&self.observed)
            .filter(|(m, o)| **m && **o)
            .count();
        multi as f64 / observed as f64
    }

    /// Number of sources covered by at least one observation.
    pub fn observed_count(&self) -> usize {
        self.observed.iter().filter(|o| **o).count()
    }
}

/// Majority link among votes; ties break toward the smaller link id so the
/// outcome is deterministic.
fn majority(votes: &[LinkId]) -> Option<LinkId> {
    if votes.is_empty() {
        return None;
    }
    let mut sorted = votes.to_vec();
    sorted.sort_unstable();
    let mut best = sorted[0];
    let mut best_count = 0usize;
    let mut i = 0usize;
    while i < sorted.len() {
        let v = sorted[i];
        let mut j = i;
        while j < sorted.len() && sorted[j] == v {
            j += 1;
        }
        if j - i > best_count {
            best = v;
            best_count = j - i;
        }
        i = j;
    }
    Some(best)
}

/// Combine BGP and traceroute observations into measured catchments,
/// applying the paper's priority rules:
/// 1. A source with BGP votes uses the BGP majority (BGP is trusted over
///    traceroute to minimize IP-to-AS errors).
/// 2. Otherwise the traceroute majority applies.
/// 3. Conflicting votes of any kind set the `multi_catchment` flag.
pub fn combine_observations(
    topo: &Topology,
    bgp: &[BgpObservation],
    traceroutes: &[RepairedPath],
) -> MeasuredCatchments {
    let n = topo.num_ases();
    let mut bgp_votes: Vec<Vec<LinkId>> = vec![Vec::new(); n];
    let mut tr_votes: Vec<Vec<LinkId>> = vec![Vec::new(); n];

    for obs in bgp {
        for a in &obs.path {
            if let Some(i) = topo.index_of(*a) {
                bgp_votes[i.us()].push(obs.ingress);
            }
        }
    }
    for rp in traceroutes {
        let Some(link) = rp.reached else { continue };
        // The probe always knows its own AS, independent of IP-to-AS.
        tr_votes[rp.probe.us()].push(link);
        for a in &rp.path {
            if let Some(i) = topo.index_of(*a) {
                if i != rp.probe {
                    tr_votes[i.us()].push(link);
                }
            }
        }
    }

    let mut catchments = Catchments::unassigned(n);
    let mut observed = vec![false; n];
    let mut multi = vec![false; n];
    for i in 0..n {
        let b = &bgp_votes[i];
        let t = &tr_votes[i];
        let assignment = if !b.is_empty() {
            majority(b)
        } else {
            majority(t)
        };
        observed[i] = !b.is_empty() || !t.is_empty();
        let mut distinct: Vec<LinkId> = b.iter().chain(t.iter()).copied().collect();
        distinct.sort_unstable();
        distinct.dedup();
        multi[i] = distinct.len() > 1;
        catchments.set(AsIndex(i as u32), assignment);
    }
    MeasuredCatchments {
        catchments,
        observed,
        multi_catchment: multi,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trackdown_topology::{topology_from_links, LinkKind};

    fn topo3() -> Topology {
        topology_from_links([
            (Asn(1), Asn(2), LinkKind::ProviderCustomer),
            (Asn(2), Asn(3), LinkKind::ProviderCustomer),
        ])
        .unwrap()
    }

    fn rp(probe: u32, path: &[u32], link: Option<LinkId>) -> RepairedPath {
        RepairedPath {
            probe: AsIndex(probe),
            reached: link,
            path: path.iter().map(|&x| Asn(x)).collect(),
            ignored_hops: 0,
            repaired_hops: 0,
            ixp_hops: 0,
        }
    }

    #[test]
    fn majority_prefers_most_common_then_smallest() {
        assert_eq!(majority(&[]), None);
        assert_eq!(majority(&[LinkId(2)]), Some(LinkId(2)));
        assert_eq!(
            majority(&[LinkId(1), LinkId(2), LinkId(2)]),
            Some(LinkId(2))
        );
        // Tie: smaller id wins.
        assert_eq!(majority(&[LinkId(3), LinkId(1)]), Some(LinkId(1)));
    }

    #[test]
    fn on_path_ases_inherit_the_ingress() {
        let topo = topo3();
        let obs = vec![BgpObservation {
            feeder: AsIndex(2),
            path: vec![Asn(3), Asn(2), Asn(1)],
            ingress: LinkId(4),
        }];
        let m = combine_observations(&topo, &obs, &[]);
        for i in 0..3 {
            assert_eq!(m.catchments.get(AsIndex(i)), Some(LinkId(4)));
            assert!(m.observed[i as usize]);
            assert!(!m.multi_catchment[i as usize]);
        }
        assert_eq!(m.multi_catchment_rate(), 0.0);
        assert_eq!(m.observed_count(), 3);
    }

    #[test]
    fn bgp_priority_over_traceroute() {
        let topo = topo3();
        let obs = vec![BgpObservation {
            feeder: AsIndex(0),
            path: vec![Asn(1)],
            ingress: LinkId(0),
        }];
        // Traceroute says AS1 is behind link 1 (e.g. via a mis-mapped hop).
        let trs = vec![rp(2, &[3, 1], Some(LinkId(1)))];
        let m = combine_observations(&topo, &obs, &trs);
        let i1 = topo.index_of(Asn(1)).unwrap();
        assert_eq!(m.catchments.get(i1), Some(LinkId(0)), "BGP wins");
        assert!(m.multi_catchment[i1.us()]);
        assert!(m.multi_catchment_rate() > 0.0);
    }

    #[test]
    fn traceroute_majority_when_no_bgp() {
        let topo = topo3();
        let trs = vec![
            rp(2, &[3, 2], Some(LinkId(0))),
            rp(2, &[3, 2], Some(LinkId(0))),
            rp(2, &[3, 2], Some(LinkId(1))),
        ];
        let m = combine_observations(&topo, &[], &trs);
        let i2 = topo.index_of(Asn(2)).unwrap();
        assert_eq!(m.catchments.get(i2), Some(LinkId(0)));
        assert!(m.multi_catchment[i2.us()]);
        // AS1 never observed.
        let i1 = topo.index_of(Asn(1)).unwrap();
        assert_eq!(m.catchments.get(i1), None);
        assert!(!m.observed[i1.us()]);
    }

    #[test]
    fn unreached_traceroutes_contribute_nothing() {
        let topo = topo3();
        let trs = vec![rp(2, &[3, 2, 1], None)];
        let m = combine_observations(&topo, &[], &trs);
        assert_eq!(m.observed_count(), 0);
    }

    #[test]
    fn out_of_topology_asns_are_skipped() {
        let topo = topo3();
        let obs = vec![BgpObservation {
            feeder: AsIndex(0),
            path: vec![Asn(1), Asn(999_999)],
            ingress: LinkId(0),
        }];
        let m = combine_observations(&topo, &obs, &[]);
        assert_eq!(m.observed_count(), 1);
    }
}
