//! Vantage points: where the origin can observe routing from.
//!
//! The paper measures catchments with two source types (§IV-b):
//!
//! * **BGP feeds** — RouteViews and RIPE RIS collectors receiving full
//!   tables from a set of peer ASes ("all public BGP feeds");
//! * **Traceroute probes** — 1 600 RIPE Atlas probes issuing traceroutes
//!   toward the PEERING prefixes every 20 minutes.
//!
//! We model both as seeded samples of ASes: BGP feeders are biased toward
//! large-cone networks (all tier-1s feed collectors, as in the paper's
//! dataset), probe ASes are sampled uniformly (Atlas probes sit mostly in
//! edge networks).

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use trackdown_topology::{cone::ConeInfo, AsIndex, Topology};

/// Sampling parameters for the observation plane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VantageConfig {
    /// Seed for vantage selection.
    pub seed: u64,
    /// Fraction of ASes exporting their Loc-RIB to collectors, beyond the
    /// always-included tier-1s. Cone-weighted.
    pub bgp_feed_fraction: f64,
    /// Fraction of ASes hosting traceroute probes, sampled uniformly.
    pub probe_fraction: f64,
}

impl Default for VantageConfig {
    fn default() -> VantageConfig {
        VantageConfig {
            seed: 0x7a97_a9e5,
            bgp_feed_fraction: 0.06,
            probe_fraction: 0.25,
        }
    }
}

/// The selected observation points.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VantagePoints {
    /// ASes whose best route reaches public BGP collectors.
    pub bgp_feeders: Vec<AsIndex>,
    /// ASes hosting traceroute probes.
    pub probe_ases: Vec<AsIndex>,
}

impl VantagePoints {
    /// Select vantage points over a topology.
    ///
    /// All tier-1 ASes feed collectors (as in the paper's dataset:
    /// "including all Tier-1 ASes"); further feeders are sampled with
    /// probability scaled by customer-cone size.
    pub fn select(topo: &Topology, cones: &ConeInfo, cfg: &VantageConfig) -> VantagePoints {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let max_cone = topo
            .indices()
            .map(|i| cones.cone_size(i))
            .max()
            .unwrap_or(1) as f64;
        let mut bgp_feeders = Vec::new();
        let mut probe_ases = Vec::new();
        for i in topo.indices() {
            if cones.is_tier1(i) {
                bgp_feeders.push(i);
            } else {
                // Cone-size weighting: a pure stub has the base probability,
                // the biggest transit is ~5x more likely to feed a collector.
                let weight = 1.0 + 4.0 * (cones.cone_size(i) as f64 / max_cone);
                if rng.random::<f64>() < cfg.bgp_feed_fraction * weight {
                    bgp_feeders.push(i);
                }
            }
            if rng.random::<f64>() < cfg.probe_fraction {
                probe_ases.push(i);
            }
        }
        VantagePoints {
            bgp_feeders,
            probe_ases,
        }
    }

    /// Total number of distinct vantage ASes.
    pub fn coverage(&self) -> usize {
        let mut all: Vec<AsIndex> = self
            .bgp_feeders
            .iter()
            .chain(self.probe_ases.iter())
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trackdown_topology::gen::{generate, TopologyConfig};

    #[test]
    fn selection_is_deterministic() {
        let g = generate(&TopologyConfig::small(2));
        let cones = ConeInfo::compute(&g.topology);
        let cfg = VantageConfig::default();
        let a = VantagePoints::select(&g.topology, &cones, &cfg);
        let b = VantagePoints::select(&g.topology, &cones, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn tier1s_always_feed_collectors() {
        let g = generate(&TopologyConfig::small(3));
        let cones = ConeInfo::compute(&g.topology);
        let v = VantagePoints::select(
            &g.topology,
            &cones,
            &VantageConfig {
                seed: 1,
                bgp_feed_fraction: 0.0,
                probe_fraction: 0.0,
            },
        );
        let tier1s: Vec<AsIndex> = cones.tier1s().collect();
        assert_eq!(v.bgp_feeders, tier1s);
        assert!(v.probe_ases.is_empty());
    }

    #[test]
    fn fractions_scale_counts() {
        let g = generate(&TopologyConfig::medium(4));
        let cones = ConeInfo::compute(&g.topology);
        let lo = VantagePoints::select(
            &g.topology,
            &cones,
            &VantageConfig {
                seed: 9,
                bgp_feed_fraction: 0.02,
                probe_fraction: 0.1,
            },
        );
        let hi = VantagePoints::select(
            &g.topology,
            &cones,
            &VantageConfig {
                seed: 9,
                bgp_feed_fraction: 0.2,
                probe_fraction: 0.5,
            },
        );
        assert!(hi.bgp_feeders.len() > lo.bgp_feeders.len());
        assert!(hi.probe_ases.len() > lo.probe_ases.len());
        assert!(hi.coverage() >= hi.probe_ases.len());
    }
}
