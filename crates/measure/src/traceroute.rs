//! Simulated traceroute campaigns (RIPE Atlas analog).
//!
//! A traceroute from a probe AS toward the experiment prefix walks the
//! data-plane forwarding chain computed by the BGP engine. Per hop we
//! inject the two error sources the paper's pipeline has to cope with
//! (§IV-b): unresponsive hops (no reply) and IP-to-AS mis-mapping.
//! Campaigns run several rounds per configuration — the paper keeps each
//! configuration active long enough "to collect at least three rounds of
//! traceroutes".

use crate::mapping::IpToAs;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use trackdown_bgp::{ForwardingWalker, LinkId, RoutingOutcome};
use trackdown_topology::{AsIndex, Asn, Topology};

/// Traceroute fault-injection parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracerouteConfig {
    /// Seed mixed into every per-hop roll.
    pub seed: u64,
    /// Probability a hop does not answer (per probe, round, and hop).
    pub hop_unresponsive_prob: f64,
    /// Rounds of measurement per configuration (paper: ≥ 3).
    pub rounds: usize,
    /// Probability that a hop reached across a *peering* link answers
    /// from the IXP fabric's address space instead of the AS's own — the
    /// artifact PeeringDB/traIXroute data cleans up (§IV-b). The hop then
    /// resolves to a private "IXP" ASN that repair strips.
    pub ixp_hop_prob: f64,
}

impl Default for TracerouteConfig {
    fn default() -> TracerouteConfig {
        TracerouteConfig {
            seed: 0x007e_ace0,
            hop_unresponsive_prob: 0.08,
            rounds: 3,
            ixp_hop_prob: 0.3,
        }
    }
}

/// The deterministic private ASN an IXP fabric between two ASes resolves
/// to (64512–65533, RFC 6996 private range).
pub fn ixp_fabric_asn(a: AsIndex, b: AsIndex) -> Asn {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    let h = crate::mix(((lo.0 as u64) << 32) | hi.0 as u64);
    Asn(64512 + (h % 1022) as u32)
}

/// One AS-level hop of a traceroute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hop {
    /// Ground-truth AS of the hop (never exposed to inference code; kept
    /// for evaluation).
    pub true_as: AsIndex,
    /// ASN the hop resolved to, or `None` when unresponsive/unmapped.
    pub observed: Option<Asn>,
}

/// One traceroute measurement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Traceroute {
    /// The probe's AS.
    pub probe: AsIndex,
    /// Measurement round within the configuration.
    pub round: usize,
    /// The origin-side observation: which peering link the packets arrived
    /// through, or `None` if the prefix was unreachable from the probe.
    pub reached: Option<LinkId>,
    /// AS-level hops, probe first, PoP provider last.
    pub hops: Vec<Hop>,
}

impl Traceroute {
    /// The observed AS sequence with consecutive duplicates collapsed
    /// (router-level hops inside one AS appear as a single AS hop).
    pub fn observed_sequence(&self) -> Vec<Option<Asn>> {
        let mut out: Vec<Option<Asn>> = Vec::with_capacity(self.hops.len());
        for h in &self.hops {
            if out.last() != Some(&h.observed) || h.observed.is_none() {
                out.push(h.observed);
            }
        }
        out
    }

    /// Fraction of hops that produced an observation.
    pub fn responsiveness(&self) -> f64 {
        if self.hops.is_empty() {
            return 0.0;
        }
        self.hops.iter().filter(|h| h.observed.is_some()).count() as f64 / self.hops.len() as f64
    }
}

/// Run one traceroute. `config_salt` distinguishes announcement
/// configurations so fault patterns differ between configurations but stay
/// reproducible within one.
pub fn run_traceroute(
    topo: &Topology,
    db: &IpToAs,
    outcome: &RoutingOutcome,
    probe: AsIndex,
    round: usize,
    cfg: &TracerouteConfig,
    config_salt: u64,
) -> Traceroute {
    let mut walker = ForwardingWalker::new();
    run_traceroute_with_walker(
        topo,
        db,
        outcome,
        probe,
        round,
        cfg,
        config_salt,
        &mut walker,
    )
}

/// [`run_traceroute`] reusing a caller-owned [`ForwardingWalker`], so
/// campaign loops pay for the visited buffer once instead of per probe.
#[allow(clippy::too_many_arguments)]
pub fn run_traceroute_with_walker(
    topo: &Topology,
    db: &IpToAs,
    outcome: &RoutingOutcome,
    probe: AsIndex,
    round: usize,
    cfg: &TracerouteConfig,
    config_salt: u64,
    walker: &mut ForwardingWalker,
) -> Traceroute {
    let walk = walker.walk(outcome, probe);
    let (true_hops, reached) = match walk {
        Some(w) => (w.hops, Some(w.link)),
        None => (vec![probe], None),
    };
    let mut hops = Vec::with_capacity(true_hops.len());
    for (pos, &h) in true_hops.iter().enumerate() {
        let salt = crate::mix(
            cfg.seed
                ^ config_salt.rotate_left(17)
                ^ ((probe.0 as u64) << 40)
                ^ ((round as u64) << 28)
                ^ ((pos as u64) << 20)
                ^ h.0 as u64,
        );
        let unresponsive = ((salt % 100_000) as f64 / 100_000.0) < cfg.hop_unresponsive_prob;
        let observed = if unresponsive {
            None
        } else {
            // Hops entered over a peering link may answer from the IXP
            // fabric's address space.
            let over_peering = pos > 0
                && topo.relationship(true_hops[pos - 1], h)
                    == Some(trackdown_topology::NeighborKind::Peer);
            let ixp_roll = (crate::mix(salt ^ 0x1c9) % 100_000) as f64 / 100_000.0;
            if over_peering && ixp_roll < cfg.ixp_hop_prob {
                Some(ixp_fabric_asn(true_hops[pos - 1], h))
            } else {
                db.resolve(topo, h, salt ^ 0xFACE).asn()
            }
        };
        hops.push(Hop {
            true_as: h,
            observed,
        });
    }
    Traceroute {
        probe,
        round,
        reached,
        hops,
    }
}

/// Run a full campaign: every probe, every round, one configuration.
pub fn run_campaign(
    topo: &Topology,
    db: &IpToAs,
    outcome: &RoutingOutcome,
    probes: &[AsIndex],
    cfg: &TracerouteConfig,
    config_salt: u64,
) -> Vec<Traceroute> {
    let mut out = Vec::with_capacity(probes.len() * cfg.rounds);
    let mut walker = ForwardingWalker::new();
    for &p in probes {
        for round in 0..cfg.rounds {
            out.push(run_traceroute_with_walker(
                topo,
                db,
                outcome,
                p,
                round,
                cfg,
                config_salt,
                &mut walker,
            ));
        }
    }
    out
}

/// Probe subsampling: the paper could only probe from 1 600 Atlas probes
/// every 20 minutes; this helper deterministically samples a probe subset
/// per configuration when a budget is set.
pub fn sample_probes(probes: &[AsIndex], budget: usize, salt: u64) -> Vec<AsIndex> {
    if probes.len() <= budget {
        return probes.to_vec();
    }
    let mut rng = ChaCha8Rng::seed_from_u64(salt);
    let mut pool = probes.to_vec();
    // Partial Fisher-Yates: draw `budget` distinct probes.
    for k in 0..budget {
        let j = k + rng.random_range(0..pool.len() - k);
        pool.swap(k, j);
    }
    pool.truncate(budget);
    pool.sort_unstable();
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::IpToAsConfig;
    use trackdown_bgp::{BgpEngine, EngineConfig, LinkAnnouncement, OriginAs, PolicyConfig};
    use trackdown_topology::gen::{generate, TopologyConfig};

    fn setup() -> (
        trackdown_topology::gen::GeneratedTopology,
        OriginAs,
        RoutingOutcome,
    ) {
        let g = generate(&TopologyConfig::small(9));
        let origin = OriginAs::peering_style(&g, 3);
        let cfg = EngineConfig {
            policy: PolicyConfig {
                seed: 2,
                violator_fraction: 0.0,
                no_loop_prevention_fraction: 0.0,
                tier1_poison_filtering: false,
                extensions: Default::default(),
            },
            ..EngineConfig::default()
        };
        let engine = BgpEngine::new(&g.topology, &cfg);
        let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let out = engine.propagate_config(&origin, &anns, 200).unwrap();
        (g, origin, out)
    }

    fn clean_db(topo: &Topology) -> IpToAs {
        IpToAs::build(
            topo,
            &IpToAsConfig {
                seed: 0,
                dirty_as_fraction: 0.0,
                mismap_prob: 0.0,
                unmapped_prob: 0.0,
            },
        )
    }

    #[test]
    fn perfect_traceroute_matches_walk() {
        let (g, _o, out) = setup();
        let db = clean_db(&g.topology);
        let cfg = TracerouteConfig {
            seed: 1,
            hop_unresponsive_prob: 0.0,
            rounds: 1,
            ixp_hop_prob: 0.0,
        };
        let probe = AsIndex(50);
        let tr = run_traceroute(&g.topology, &db, &out, probe, 0, &cfg, 0);
        let walk = out.forwarding_walk(probe).unwrap();
        assert_eq!(tr.reached, Some(walk.link));
        assert_eq!(tr.hops.len(), walk.hops.len());
        for (h, w) in tr.hops.iter().zip(&walk.hops) {
            assert_eq!(h.observed, Some(g.topology.asn_of(*w)));
        }
        assert!((tr.responsiveness() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unresponsive_hops_appear_at_configured_rate() {
        let (g, _o, out) = setup();
        let db = clean_db(&g.topology);
        let cfg = TracerouteConfig {
            seed: 5,
            hop_unresponsive_prob: 0.25,
            rounds: 3,
            ixp_hop_prob: 0.0,
        };
        let probes: Vec<AsIndex> = g.topology.indices().collect();
        let campaign = run_campaign(&g.topology, &db, &out, &probes, &cfg, 7);
        let total: usize = campaign.iter().map(|t| t.hops.len()).sum();
        let missing: usize = campaign
            .iter()
            .flat_map(|t| &t.hops)
            .filter(|h| h.observed.is_none())
            .count();
        let rate = missing as f64 / total as f64;
        assert!((0.2..0.3).contains(&rate), "rate={rate}");
    }

    #[test]
    fn traceroutes_are_deterministic() {
        let (g, _o, out) = setup();
        let db = clean_db(&g.topology);
        let cfg = TracerouteConfig::default();
        let a = run_traceroute(&g.topology, &db, &out, AsIndex(10), 1, &cfg, 3);
        let b = run_traceroute(&g.topology, &db, &out, AsIndex(10), 1, &cfg, 3);
        assert_eq!(a, b);
        // Different rounds see different fault patterns (almost surely
        // for some probe when unresponsiveness is high).
        let cfg_noisy = TracerouteConfig {
            seed: 5,
            hop_unresponsive_prob: 0.5,
            rounds: 1,
            ixp_hop_prob: 0.0,
        };
        let differs = g.topology.indices().any(|p| {
            let x = run_traceroute(&g.topology, &db, &out, p, 0, &cfg_noisy, 3);
            let y = run_traceroute(&g.topology, &db, &out, p, 1, &cfg_noisy, 3);
            x.hops != y.hops
        });
        assert!(differs);
    }

    #[test]
    fn unreachable_probe_reports_no_link() {
        let (g, origin, _out) = setup();
        let db = clean_db(&g.topology);
        // Propagate with zero announcements: nothing reachable.
        let engine = BgpEngine::new(&g.topology, &EngineConfig::default());
        let empty = engine.propagate_config(&origin, &[], 200).unwrap();
        let tr = run_traceroute(
            &g.topology,
            &db,
            &empty,
            AsIndex(3),
            0,
            &TracerouteConfig::default(),
            0,
        );
        assert_eq!(tr.reached, None);
        assert_eq!(tr.hops.len(), 1);
    }

    #[test]
    fn observed_sequence_collapses_duplicates() {
        let tr = Traceroute {
            probe: AsIndex(0),
            round: 0,
            reached: None,
            hops: vec![
                Hop {
                    true_as: AsIndex(0),
                    observed: Some(Asn(1)),
                },
                Hop {
                    true_as: AsIndex(0),
                    observed: Some(Asn(1)),
                },
                Hop {
                    true_as: AsIndex(1),
                    observed: None,
                },
                Hop {
                    true_as: AsIndex(2),
                    observed: None,
                },
                Hop {
                    true_as: AsIndex(3),
                    observed: Some(Asn(4)),
                },
            ],
        };
        assert_eq!(
            tr.observed_sequence(),
            vec![Some(Asn(1)), None, None, Some(Asn(4))]
        );
    }

    #[test]
    fn ixp_hops_appear_on_peering_crossings() {
        use trackdown_topology::NeighborKind;
        let (g, _o, out) = setup();
        let db = clean_db(&g.topology);
        let cfg = TracerouteConfig {
            seed: 2,
            hop_unresponsive_prob: 0.0,
            rounds: 1,
            ixp_hop_prob: 1.0,
        };
        let mut ixp_seen = 0usize;
        let mut peer_crossings = 0usize;
        for p in g.topology.indices() {
            let tr = run_traceroute(&g.topology, &db, &out, p, 0, &cfg, 0);
            let Some(walk) = out.forwarding_walk(p) else {
                continue;
            };
            for (pos, h) in tr.hops.iter().enumerate() {
                let crossed_peer = pos > 0
                    && g.topology.relationship(walk.hops[pos - 1], walk.hops[pos])
                        == Some(NeighborKind::Peer);
                if crossed_peer {
                    peer_crossings += 1;
                    let a = h.observed.expect("responsive");
                    assert!(a.is_private(), "peer crossing must yield IXP ASN");
                    assert_eq!(a, ixp_fabric_asn(walk.hops[pos - 1], walk.hops[pos]));
                    ixp_seen += 1;
                } else if let Some(a) = h.observed {
                    assert!(!a.is_private(), "non-peering hop resolved to IXP");
                }
            }
        }
        assert!(
            ixp_seen > 0,
            "no peering crossings exercised ({peer_crossings})"
        );
    }

    #[test]
    fn ixp_fabric_asn_is_symmetric_and_private() {
        let a = ixp_fabric_asn(AsIndex(3), AsIndex(9));
        let b = ixp_fabric_asn(AsIndex(9), AsIndex(3));
        assert_eq!(a, b);
        assert!(a.is_private());
    }

    #[test]
    fn probe_sampling_respects_budget() {
        let probes: Vec<AsIndex> = (0..100).map(AsIndex).collect();
        let s = sample_probes(&probes, 10, 42);
        assert_eq!(s.len(), 10);
        let s2 = sample_probes(&probes, 10, 42);
        assert_eq!(s, s2);
        let all = sample_probes(&probes, 1000, 42);
        assert_eq!(all.len(), 100);
        // Distinct members.
        let mut d = s.clone();
        d.dedup();
        assert_eq!(d.len(), s.len());
    }
}
