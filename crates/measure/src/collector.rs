//! BGP route collectors as *update streams* (RouteViews/RIS behaviour).
//!
//! Besides final Loc-RIB snapshots ([`crate::observe::collect_bgp_feeds`]),
//! real collectors receive the UPDATE messages feeders emit while routes
//! converge. The paper's dataset leans on exactly this ("thousands of
//! route changes (with different properties)", §VI), and convergence
//! detection — "wait for route convergence" before measuring (§IV-a) — is
//! the quiescence of this stream.

use serde::{Deserialize, Serialize};
use trackdown_bgp::{LinkId, RouteChange, RoutingOutcome};
use trackdown_topology::AsIndex;

/// One UPDATE as a collector logs it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectorUpdate {
    /// Convergence round (MRAI-batch proxy) the update was sent in.
    pub round: u32,
    /// The feeding AS that re-announced (or withdrew).
    pub feeder: AsIndex,
    /// New ingress link, `None` for a withdrawal.
    pub ingress: Option<LinkId>,
    /// AS-path length announced.
    pub path_len: usize,
}

/// The update stream a set of feeders produces for one configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct UpdateStream {
    /// Updates in emission order.
    pub updates: Vec<CollectorUpdate>,
}

impl UpdateStream {
    /// Extract the stream from a routing outcome, restricted to feeders.
    pub fn collect(outcome: &RoutingOutcome, feeders: &[AsIndex]) -> UpdateStream {
        let feeder_set: std::collections::HashSet<AsIndex> = feeders.iter().copied().collect();
        UpdateStream {
            updates: outcome
                .changes
                .iter()
                .filter(|c| feeder_set.contains(&c.at))
                .map(|c: &RouteChange| CollectorUpdate {
                    round: c.round,
                    feeder: c.at,
                    ingress: c.ingress,
                    path_len: c.path_len,
                })
                .collect(),
        }
    }

    /// Number of updates received.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True when no update was received.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// The round after which the stream went quiet — the collector-side
    /// convergence signal the paper waits for before measuring
    /// catchments.
    pub fn convergence_round(&self) -> u32 {
        self.updates.iter().map(|u| u.round).max().unwrap_or(0)
    }

    /// Updates per round (histogram over `0..=convergence_round`):
    /// the shape of the convergence burst.
    pub fn updates_per_round(&self) -> Vec<usize> {
        let max = self.convergence_round();
        let mut hist = vec![0usize; max as usize + 1];
        for u in &self.updates {
            hist[u.round as usize] += 1;
        }
        hist
    }

    /// Number of *path explorations*: feeders that announced more than
    /// once during convergence (transient routes replaced by better ones —
    /// the BGP path-exploration phenomenon).
    pub fn path_explorations(&self) -> usize {
        let mut counts: std::collections::HashMap<AsIndex, usize> =
            std::collections::HashMap::new();
        for u in &self.updates {
            *counts.entry(u.feeder).or_insert(0) += 1;
        }
        counts.values().filter(|&&c| c > 1).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trackdown_bgp::{BgpEngine, EngineConfig, LinkAnnouncement, OriginAs};
    use trackdown_topology::gen::{generate, TopologyConfig};

    fn outcome() -> (trackdown_topology::gen::GeneratedTopology, RoutingOutcome) {
        let g = generate(&TopologyConfig::small(55));
        let origin = OriginAs::peering_style(&g, 4);
        let engine = BgpEngine::new(&g.topology, &EngineConfig::default());
        let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let out = engine.propagate_config(&origin, &anns, 200).unwrap();
        (g, out)
    }

    #[test]
    fn every_reachable_feeder_updates_at_least_once() {
        let (g, out) = outcome();
        let feeders: Vec<AsIndex> = g.topology.indices().collect();
        let stream = UpdateStream::collect(&out, &feeders);
        // Starting from an empty RIB, every AS that ends with a route must
        // have announced at least once.
        let mut seen: Vec<AsIndex> = stream.updates.iter().map(|u| u.feeder).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), out.reachable_count());
        assert!(!stream.is_empty());
    }

    #[test]
    fn stream_restricted_to_feeders() {
        let (g, out) = outcome();
        let feeders: Vec<AsIndex> = g.topology.indices().take(5).collect();
        let stream = UpdateStream::collect(&out, &feeders);
        for u in &stream.updates {
            assert!(feeders.contains(&u.feeder));
        }
        assert!(stream.len() >= feeders.len().min(out.reachable_count()));
    }

    #[test]
    fn convergence_round_matches_outcome_rounds() {
        let (g, out) = outcome();
        let feeders: Vec<AsIndex> = g.topology.indices().collect();
        let stream = UpdateStream::collect(&out, &feeders);
        // The full-feeder stream quiets exactly at the engine's measured
        // convergence depth.
        assert_eq!(stream.convergence_round(), out.rounds);
        let hist = stream.updates_per_round();
        assert_eq!(hist.iter().sum::<usize>(), stream.len());
        assert_eq!(hist.len() as u32, out.rounds + 1);
    }

    #[test]
    fn path_exploration_happens_somewhere() {
        // With multiple anycast links, some AS hears a worse route first
        // and replaces it — classic path exploration. Whether a specific
        // topology/ordering exhibits it is seed-dependent, so scan a few.
        let mut explored_anywhere = false;
        for seed in 50..60u64 {
            let g = generate(&TopologyConfig::small(seed));
            let origin = OriginAs::peering_style(&g, 4);
            let engine = BgpEngine::new(&g.topology, &EngineConfig::default());
            let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
            let out = engine.propagate_config(&origin, &anns, 200).unwrap();
            let feeders: Vec<AsIndex> = g.topology.indices().collect();
            let stream = UpdateStream::collect(&out, &feeders);
            // Never an unbounded churn storm.
            assert!(stream.len() < 3 * out.reachable_count());
            if stream.path_explorations() > 0 {
                explored_anywhere = true;
            }
        }
        assert!(
            explored_anywhere,
            "no seed exhibited path exploration at all"
        );
    }

    #[test]
    fn empty_stream_behaviour() {
        let s = UpdateStream::default();
        assert!(s.is_empty());
        assert_eq!(s.convergence_round(), 0);
        assert_eq!(s.updates_per_round(), vec![0]);
        assert_eq!(s.path_explorations(), 0);
    }
}
