//! Source visibility: restricting analysis to reliably-observed sources
//! and imputing catchments for sources missing from some configurations
//! (§IV-d of the paper).
//!
//! 1. The analysis set is limited to sources observed in the *baseline*
//!    configuration (the plain anycast from all links) — "this avoids
//!    considering ASes observed only in a few, specific configurations".
//! 2. For every configuration where a source `s` was not observed, `s` is
//!    assigned to the catchment of `smax` — the source whose catchment `s`
//!    appears in most frequently across the configurations where `s` *was*
//!    observed (i.e. `s` and `smax` route similarly).

use crate::observe::MeasuredCatchments;
use std::collections::HashMap;
use trackdown_topology::AsIndex;

/// Statistics from an imputation pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ImputationStats {
    /// Sources in the analysis set (observed at baseline).
    pub analysis_sources: usize,
    /// Sources excluded because they were invisible at baseline.
    pub excluded_sources: usize,
    /// (source, configuration) holes that were filled via `smax`.
    pub imputed_assignments: usize,
    /// Holes that could not be filled (no companion observed there).
    pub unfilled_assignments: usize,
}

/// The analysis set: sources observed in the baseline configuration.
pub fn analysis_set(measured: &[MeasuredCatchments], baseline: usize) -> Vec<AsIndex> {
    measured[baseline]
        .observed
        .iter()
        .enumerate()
        .filter(|(_, o)| **o)
        .map(|(i, _)| AsIndex(i as u32))
        .collect()
}

/// For source `s`, find `smax`: the other source most frequently sharing
/// `s`'s catchment across configurations where `s` was observed.
fn find_smax(measured: &[MeasuredCatchments], s: AsIndex) -> Option<AsIndex> {
    let mut counts: HashMap<AsIndex, u32> = HashMap::new();
    for m in measured {
        if !m.observed[s.us()] {
            continue;
        }
        let Some(link) = m.catchments.get(s) else {
            continue;
        };
        for t in m.catchments.members(link) {
            if t != s {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
    }
    // Deterministic argmax: highest count, then lowest index.
    counts
        .into_iter()
        .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        .map(|(t, _)| t)
}

/// Fill visibility holes in-place: for each source in the analysis set and
/// each configuration where it is unobserved, copy the catchment of its
/// `smax` companion. Returns the imputation statistics.
pub fn impute_visibility(measured: &mut [MeasuredCatchments], baseline: usize) -> ImputationStats {
    let n = measured[baseline].observed.len();
    let set = analysis_set(measured, baseline);
    let mut stats = ImputationStats {
        analysis_sources: set.len(),
        excluded_sources: n - set.len(),
        ..ImputationStats::default()
    };
    for &s in &set {
        // Skip fully-observed sources quickly.
        if measured.iter().all(|m| m.observed[s.us()]) {
            continue;
        }
        let smax = find_smax(measured, s);
        for m in measured.iter_mut() {
            if m.observed[s.us()] {
                continue;
            }
            let fill = smax.and_then(|t| m.catchments.get(t));
            match fill {
                Some(link) => {
                    m.catchments.set(s, Some(link));
                    stats.imputed_assignments += 1;
                }
                None => stats.unfilled_assignments += 1,
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use trackdown_bgp::{Catchments, LinkId};

    /// Build a MeasuredCatchments over `n` sources from (index, link) pairs;
    /// everything listed is observed, the rest is not.
    fn mc(n: usize, assigned: &[(u32, u8)]) -> MeasuredCatchments {
        let mut c = Catchments::unassigned(n);
        let mut observed = vec![false; n];
        for &(i, l) in assigned {
            c.set(AsIndex(i), Some(LinkId(l)));
            observed[i as usize] = true;
        }
        MeasuredCatchments {
            catchments: c,
            observed,
            multi_catchment: vec![false; n],
        }
    }

    #[test]
    fn analysis_set_is_baseline_observed() {
        let ms = vec![mc(4, &[(0, 0), (1, 1)]), mc(4, &[(2, 0)])];
        let set = analysis_set(&ms, 0);
        assert_eq!(set, vec![AsIndex(0), AsIndex(1)]);
    }

    #[test]
    fn smax_is_most_frequent_companion() {
        // Source 0 shares catchments with source 1 twice, source 2 once.
        let ms = vec![
            mc(3, &[(0, 0), (1, 0), (2, 1)]),
            mc(3, &[(0, 1), (1, 1), (2, 1)]),
        ];
        assert_eq!(find_smax(&ms, AsIndex(0)), Some(AsIndex(1)));
    }

    #[test]
    fn imputation_fills_holes_from_smax() {
        // Config 0 (baseline): 0 and 1 together on link 0.
        // Config 1: source 0 missing; source 1 observed on link 1.
        let mut ms = vec![mc(2, &[(0, 0), (1, 0)]), mc(2, &[(1, 1)])];
        let stats = impute_visibility(&mut ms, 0);
        assert_eq!(stats.analysis_sources, 2);
        assert_eq!(stats.imputed_assignments, 1);
        assert_eq!(stats.unfilled_assignments, 0);
        // Source 0 follows its companion onto link 1.
        assert_eq!(ms[1].catchments.get(AsIndex(0)), Some(LinkId(1)));
    }

    #[test]
    fn sources_missing_at_baseline_are_excluded() {
        let mut ms = vec![
            mc(3, &[(0, 0), (1, 0)]), // source 2 invisible at baseline
            mc(3, &[(0, 0), (1, 0)]),
        ];
        let stats = impute_visibility(&mut ms, 0);
        assert_eq!(stats.excluded_sources, 1);
        // Source 2 stays unassigned everywhere.
        assert_eq!(ms[1].catchments.get(AsIndex(2)), None);
    }

    #[test]
    fn unfillable_holes_are_counted() {
        // Source 0 has no companion at all (alone in its catchment).
        let mut ms = vec![
            mc(2, &[(0, 0)]),
            mc(2, &[]), // nothing observed in config 1
        ];
        let stats = impute_visibility(&mut ms, 0);
        assert_eq!(stats.imputed_assignments, 0);
        assert_eq!(stats.unfilled_assignments, 1);
    }

    #[test]
    fn fully_observed_sources_untouched() {
        let mut ms = vec![mc(2, &[(0, 0), (1, 1)]), mc(2, &[(0, 1), (1, 0)])];
        let before = ms.clone();
        let stats = impute_visibility(&mut ms, 0);
        assert_eq!(stats.imputed_assignments, 0);
        assert_eq!(ms, before);
    }
}
