//! Unresponsive-hop repair (§IV-b of the paper).
//!
//! > "In a traceroute measurement, if consecutive unresponsive hops are
//! > surrounded by responsive ones, we check whether the surrounding hops
//! > have a single sequence of responsive hops between them in other
//! > traceroutes; if that is the case, we substitute the unresponsive hops
//! > with the responsive ones. After this step, we map unresponsive hops
//! > whose surrounding responsive hops map to a single AS a to the same
//! > AS a. If surrounding hops map to different ASes, we check whether
//! > public BGP feeds have a single sequence of ASes between them in
//! > AS-paths; if that is the case, we substitute the unresponsive hops to
//! > match the public AS-paths. If we still have unmapped or unresponsive
//! > hops, we ignore those hops on the AS-level path."

use crate::traceroute::Traceroute;
use trackdown_bgp::LinkId;
use trackdown_topology::{AsIndex, Asn};

/// A traceroute after AS-level repair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepairedPath {
    /// The probe's AS.
    pub probe: AsIndex,
    /// Origin-side ingress link observation.
    pub reached: Option<LinkId>,
    /// Repaired AS-level path (probe side first). May be missing ASes
    /// where gaps could not be repaired.
    pub path: Vec<Asn>,
    /// Number of gap hops that had to be ignored (rule 4).
    pub ignored_hops: usize,
    /// Number of gap hops recovered by any repair rule.
    pub repaired_hops: usize,
    /// IXP-fabric hops stripped before repair (PeeringDB/traIXroute
    /// cleanup: hops resolving to private IXP ASNs are fabric addresses
    /// between two real AS hops, not AS-level hops).
    pub ixp_hops: usize,
}

/// What an index knows about the responsive interiors seen between an
/// ordered AS pair.
#[derive(Debug, Clone, PartialEq, Eq)]
enum InteriorEntry {
    /// Exactly one distinct interior was observed (possibly empty).
    Unique(Vec<Asn>),
    /// Conflicting interiors were observed: repair must not apply.
    Ambiguous,
}

/// Index of fully-responsive interiors between ordered AS pairs, built
/// once per campaign so gap repair is an O(1) lookup instead of a scan of
/// every other traceroute.
#[derive(Debug, Default, Clone)]
pub struct InteriorIndex {
    map: std::collections::HashMap<(Asn, Asn), InteriorEntry>,
}

impl InteriorIndex {
    fn add(&mut self, x: Asn, y: Asn, interior: &[Asn]) {
        use std::collections::hash_map::Entry;
        match self.map.entry((x, y)) {
            Entry::Vacant(v) => {
                v.insert(InteriorEntry::Unique(interior.to_vec()));
            }
            Entry::Occupied(mut o) => {
                if let InteriorEntry::Unique(prev) = o.get() {
                    if prev.as_slice() != interior {
                        o.insert(InteriorEntry::Ambiguous);
                    }
                }
            }
        }
    }

    /// Register every ordered pair within a fully-resolved AS sequence.
    fn add_resolved_run(&mut self, run: &[Asn]) {
        for i in 0..run.len() {
            for j in (i + 1)..run.len() {
                self.add(run[i], run[j], &run[i + 1..j]);
            }
        }
    }

    /// Build from observed traceroute sequences: only maximal responsive
    /// runs contribute (a gap breaks the run).
    pub fn from_sequences(seqs: &[Vec<Option<Asn>>]) -> InteriorIndex {
        let mut idx = InteriorIndex::default();
        for seq in seqs {
            let mut run: Vec<Asn> = Vec::new();
            for h in seq.iter().chain(std::iter::once(&None)) {
                match h {
                    Some(a) => run.push(*a),
                    None => {
                        if run.len() >= 2 {
                            idx.add_resolved_run(&run);
                        }
                        run.clear();
                    }
                }
            }
        }
        idx
    }

    /// Build from the fully-resolved BGP corpus.
    pub fn from_paths(paths: &[Vec<Asn>]) -> InteriorIndex {
        let mut idx = InteriorIndex::default();
        for p in paths {
            idx.add_resolved_run(p);
        }
        idx
    }

    /// The unique interior between `x` and `y`, if unambiguous.
    fn unique(&self, x: Asn, y: Asn) -> Option<&[Asn]> {
        match self.map.get(&(x, y)) {
            Some(InteriorEntry::Unique(v)) => Some(v),
            _ => None,
        }
    }
}

/// Repair one observed sequence against prebuilt traceroute and BGP
/// interior indexes. Returns `(path, ignored, repaired)`.
fn repair_sequence_indexed(
    seq: &[Option<Asn>],
    tr_index: &InteriorIndex,
    bgp_index: &InteriorIndex,
) -> (Vec<Asn>, usize, usize) {
    let mut out: Vec<Asn> = Vec::with_capacity(seq.len());
    let mut ignored = 0usize;
    let mut repaired = 0usize;
    let mut i = 0usize;
    while i < seq.len() {
        match seq[i] {
            Some(a) => {
                if out.last() != Some(&a) {
                    out.push(a);
                }
                i += 1;
            }
            None => {
                // Maximal gap [i, j).
                let mut j = i;
                while j < seq.len() && seq[j].is_none() {
                    j += 1;
                }
                let gap = j - i;
                let before = out.last().copied();
                let after = if j < seq.len() { seq[j] } else { None };
                match (before, after) {
                    (Some(x), Some(y)) => {
                        // Rule 1: unique responsive interior in the
                        // traceroute corpus.
                        if let Some(int) = tr_index.unique(x, y).map(<[Asn]>::to_vec) {
                            for a in &int {
                                if out.last() != Some(a) {
                                    out.push(*a);
                                }
                            }
                            repaired += gap;
                        } else if x == y {
                            // Rule 2: surrounded by a single AS.
                            repaired += gap;
                        } else if let Some(int) = bgp_index.unique(x, y) {
                            // Rule 3: unique interior in BGP paths.
                            for a in int {
                                if out.last() != Some(a) {
                                    out.push(*a);
                                }
                            }
                            repaired += gap;
                        } else {
                            // Rule 4: ignore the gap hops.
                            ignored += gap;
                        }
                    }
                    // Leading or trailing gap: nothing to anchor on.
                    _ => ignored += gap,
                }
                i = j;
            }
        }
    }
    (out, ignored, repaired)
}

/// Repair a whole campaign. `bgp_paths` is the fully-resolved AS-path
/// corpus from the collectors (probe-side first, origin side last, same
/// orientation as traceroutes).
pub fn repair_campaign(campaign: &[Traceroute], bgp_paths: &[Vec<Asn>]) -> Vec<RepairedPath> {
    // PeeringDB/traIXroute step: hops resolving to private (IXP-fabric)
    // ASNs are addresses on the exchange fabric between two genuine AS
    // hops; strip them so the surrounding ASes become adjacent.
    let mut ixp_counts = vec![0usize; campaign.len()];
    let sequences: Vec<Vec<Option<Asn>>> = campaign
        .iter()
        .enumerate()
        .map(|(k, t)| {
            let mut seq = t.observed_sequence();
            let before = seq.len();
            seq.retain(|h| !matches!(h, Some(a) if a.is_private()));
            ixp_counts[k] = before - seq.len();
            seq
        })
        .collect();
    // The interior indexes are built once over the whole campaign. A
    // traceroute's own responsive runs may contribute to its repair, a
    // harmless relaxation of the paper's "other traceroutes" (a gap never
    // produces a responsive run for its own anchors).
    let tr_index = InteriorIndex::from_sequences(&sequences);
    let bgp_index = InteriorIndex::from_paths(bgp_paths);
    campaign
        .iter()
        .zip(&sequences)
        .zip(&ixp_counts)
        .map(|((t, seq), &ixp_hops)| {
            let (path, ignored_hops, repaired_hops) =
                repair_sequence_indexed(seq, &tr_index, &bgp_index);
            RepairedPath {
                probe: t.probe,
                reached: t.reached,
                path,
                ignored_hops,
                repaired_hops,
                ixp_hops,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: u32) -> Asn {
        Asn(v)
    }
    fn s(v: u32) -> Option<Asn> {
        Some(Asn(v))
    }

    /// Test helper matching the paper's description: repair `seq` against
    /// explicit other traceroutes and a BGP corpus.
    fn repair_sequence(
        seq: &[Option<Asn>],
        other_seqs: &[Vec<Option<Asn>>],
        bgp_paths: &[Vec<Asn>],
    ) -> (Vec<Asn>, usize, usize) {
        let tr = InteriorIndex::from_sequences(other_seqs);
        let bgp = InteriorIndex::from_paths(bgp_paths);
        repair_sequence_indexed(seq, &tr, &bgp)
    }

    #[test]
    fn rule1_unique_interior_from_other_traceroutes() {
        let seq = vec![s(1), None, s(3)];
        let others = vec![vec![s(1), s(2), s(3)]];
        let (path, ignored, repaired) = repair_sequence(&seq, &others, &[]);
        assert_eq!(path, vec![a(1), a(2), a(3)]);
        assert_eq!(ignored, 0);
        assert_eq!(repaired, 1);
    }

    #[test]
    fn rule1_ambiguous_interiors_do_not_apply() {
        let seq = vec![s(1), None, s(3)];
        let others = vec![vec![s(1), s(2), s(3)], vec![s(1), s(9), s(3)]];
        // Two different interiors: rule 1 fails, rule 2 fails (1≠3), rule 3
        // has no corpus → gap ignored.
        let (path, ignored, _) = repair_sequence(&seq, &others, &[]);
        assert_eq!(path, vec![a(1), a(3)]);
        assert_eq!(ignored, 1);
    }

    #[test]
    fn rule2_same_surrounding_as() {
        let seq = vec![s(1), None, None, s(1), s(4)];
        let (path, ignored, repaired) = repair_sequence(&seq, &[], &[]);
        assert_eq!(path, vec![a(1), a(4)]);
        assert_eq!(ignored, 0);
        assert_eq!(repaired, 2);
    }

    #[test]
    fn rule3_bgp_interpolation() {
        let seq = vec![s(1), None, s(3)];
        let corpus = vec![vec![a(7), a(1), a(2), a(3), a(8)]];
        let (path, ignored, repaired) = repair_sequence(&seq, &[], &corpus);
        assert_eq!(path, vec![a(1), a(2), a(3)]);
        assert_eq!(ignored, 0);
        assert_eq!(repaired, 1);
    }

    #[test]
    fn rule3_ambiguous_bgp_paths_do_not_apply() {
        let seq = vec![s(1), None, s(3)];
        let corpus = vec![vec![a(1), a(2), a(3)], vec![a(1), a(9), a(3)]];
        let (path, ignored, _) = repair_sequence(&seq, &[], &corpus);
        assert_eq!(path, vec![a(1), a(3)]);
        assert_eq!(ignored, 1);
    }

    #[test]
    fn rule_priority_traceroutes_before_bgp() {
        // Other traceroutes say interior is [2]; BGP corpus says [9].
        // Rule 1 wins.
        let seq = vec![s(1), None, s(3)];
        let others = vec![vec![s(1), s(2), s(3)]];
        let corpus = vec![vec![a(1), a(9), a(3)]];
        let (path, _, _) = repair_sequence(&seq, &others, &corpus);
        assert_eq!(path, vec![a(1), a(2), a(3)]);
    }

    #[test]
    fn leading_and_trailing_gaps_dropped() {
        let seq = vec![None, s(1), s(2), None];
        let (path, ignored, _) = repair_sequence(&seq, &[], &[]);
        assert_eq!(path, vec![a(1), a(2)]);
        assert_eq!(ignored, 2);
    }

    #[test]
    fn empty_and_all_none_sequences() {
        let (path, ignored, _) = repair_sequence(&[], &[], &[]);
        assert!(path.is_empty());
        assert_eq!(ignored, 0);
        let (path, ignored, _) = repair_sequence(&[None, None], &[], &[]);
        assert!(path.is_empty());
        assert_eq!(ignored, 2);
    }

    #[test]
    fn direct_adjacency_in_bgp_corpus_gives_empty_interior() {
        // x and y adjacent in corpus → unique empty interior → gap closed
        // with no AS inserted.
        let seq = vec![s(1), None, s(3)];
        let corpus = vec![vec![a(1), a(3)]];
        let (path, ignored, repaired) = repair_sequence(&seq, &[], &corpus);
        assert_eq!(path, vec![a(1), a(3)]);
        assert_eq!(ignored, 0);
        assert_eq!(repaired, 1);
    }

    #[test]
    fn ixp_fabric_hops_are_stripped_and_bridged() {
        use crate::traceroute::Hop;
        use trackdown_topology::AsIndex;
        let ixp = Asn(64512 + 7); // private-range fabric ASN
        let t = Traceroute {
            probe: AsIndex(0),
            round: 0,
            reached: Some(LinkId(0)),
            hops: vec![
                Hop {
                    true_as: AsIndex(0),
                    observed: s(1),
                },
                Hop {
                    true_as: AsIndex(1),
                    observed: Some(ixp),
                },
                Hop {
                    true_as: AsIndex(1),
                    observed: s(2),
                },
            ],
        };
        let repaired = repair_campaign(&[t], &[]);
        assert_eq!(repaired[0].path, vec![a(1), a(2)]);
        assert_eq!(repaired[0].ixp_hops, 1);
        assert_eq!(repaired[0].ignored_hops, 0);
    }

    #[test]
    fn campaign_repair_uses_other_traceroutes() {
        use crate::traceroute::Hop;
        use trackdown_topology::AsIndex;
        let t1 = Traceroute {
            probe: AsIndex(0),
            round: 0,
            reached: Some(LinkId(0)),
            hops: vec![
                Hop {
                    true_as: AsIndex(0),
                    observed: s(1),
                },
                Hop {
                    true_as: AsIndex(1),
                    observed: None,
                },
                Hop {
                    true_as: AsIndex(2),
                    observed: s(3),
                },
            ],
        };
        let t2 = Traceroute {
            probe: AsIndex(5),
            round: 0,
            reached: Some(LinkId(0)),
            hops: vec![
                Hop {
                    true_as: AsIndex(0),
                    observed: s(1),
                },
                Hop {
                    true_as: AsIndex(1),
                    observed: s(2),
                },
                Hop {
                    true_as: AsIndex(2),
                    observed: s(3),
                },
            ],
        };
        let repaired = repair_campaign(&[t1, t2], &[]);
        assert_eq!(repaired[0].path, vec![a(1), a(2), a(3)]);
        assert_eq!(repaired[0].repaired_hops, 1);
        assert_eq!(repaired[1].path, vec![a(1), a(2), a(3)]);
        assert_eq!(repaired[1].repaired_hops, 0);
    }
}
