//! # trackdown-measure
//!
//! The catchment-measurement substrate: the simulated equivalent of the
//! paper's observation pipeline (§IV-b/c/d), which combined RouteViews and
//! RIPE RIS BGP feeds with RIPE Atlas traceroutes to infer which peering
//! link each source AS routes to.
//!
//! The pipeline is faithful to the paper's, fault injection included:
//!
//! 1. [`vantage`] — select BGP feeder ASes (cone-weighted, all tier-1s)
//!    and probe ASes;
//! 2. [`traceroute`] — walk data-plane paths with unresponsive hops and
//!    [`mapping`] (IP-to-AS) errors;
//! 3. [`repair`] — the paper's three-rule gap repair;
//! 4. [`observe`] — combine BGP and traceroute votes per source with BGP
//!    priority and majority resolution;
//! 5. [`visibility`] — restrict to baseline-observed sources and impute
//!    holes via each source's `smax` companion.
//!
//! [`plane::MeasurementPlane`] bundles steps 1–4 behind one call.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod collector;
pub mod mapping;
pub mod observe;
pub mod plane;
pub mod repair;
pub mod traceroute;
pub mod vantage;
pub mod visibility;

pub use collector::{CollectorUpdate, UpdateStream};
pub use mapping::{HopResolution, IpToAs, IpToAsConfig};
pub use observe::{collect_bgp_feeds, combine_observations, BgpObservation, MeasuredCatchments};
pub use plane::{MeasurementConfig, MeasurementPlane};
pub use repair::{repair_campaign, InteriorIndex, RepairedPath};
pub use traceroute::{
    run_campaign, run_traceroute, sample_probes, Hop, Traceroute, TracerouteConfig,
};
pub use vantage::{VantageConfig, VantagePoints};
pub use visibility::{analysis_set, impute_visibility, ImputationStats};

/// SplitMix64 mixer shared by the fault-injection rolls in this crate.
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use trackdown_topology::Asn;

    fn seq_strategy() -> impl Strategy<Value = Vec<Option<Asn>>> {
        proptest::collection::vec(
            proptest::option::weighted(0.8, (1u32..40).prop_map(Asn)),
            0..12,
        )
    }

    proptest! {
        // Repair never invents an AS that is absent from every evidence
        // source (the sequence itself, other traceroutes, BGP paths).
        #[test]
        fn repair_only_uses_known_ases(
            seqs in proptest::collection::vec(seq_strategy(), 1..6),
            paths in proptest::collection::vec(
                proptest::collection::vec((1u32..40).prop_map(Asn), 0..6), 0..4),
        ) {
            use crate::traceroute::Hop;
            use trackdown_topology::AsIndex;
            let campaign: Vec<Traceroute> = seqs
                .iter()
                .map(|s| Traceroute {
                    probe: AsIndex(0),
                    round: 0,
                    reached: Some(trackdown_bgp::LinkId(0)),
                    hops: s
                        .iter()
                        .map(|o| Hop { true_as: AsIndex(0), observed: *o })
                        .collect(),
                })
                .collect();
            let repaired = repair_campaign(&campaign, &paths);
            let mut known: Vec<Asn> = seqs.iter().flatten().flatten().copied().collect();
            known.extend(paths.iter().flatten().copied());
            for rp in &repaired {
                for a in &rp.path {
                    prop_assert!(known.contains(a), "invented {a}");
                }
            }
        }

        // Repaired paths never contain consecutive duplicate ASes and the
        // hop accounting is consistent.
        #[test]
        fn repair_output_well_formed(
            seqs in proptest::collection::vec(seq_strategy(), 1..6),
        ) {
            use crate::traceroute::Hop;
            use trackdown_topology::AsIndex;
            let campaign: Vec<Traceroute> = seqs
                .iter()
                .map(|s| Traceroute {
                    probe: AsIndex(0),
                    round: 0,
                    reached: None,
                    hops: s
                        .iter()
                        .map(|o| Hop { true_as: AsIndex(0), observed: *o })
                        .collect(),
                })
                .collect();
            for (rp, seq) in repair_campaign(&campaign, &[]).iter().zip(&seqs) {
                for w in rp.path.windows(2) {
                    prop_assert_ne!(w[0], w[1]);
                }
                let gaps = seq.iter().filter(|o| o.is_none()).count();
                prop_assert!(rp.ignored_hops + rp.repaired_hops <= gaps.max(seq.len()));
            }
        }
    }
}
