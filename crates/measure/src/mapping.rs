//! Simulated IP-to-AS mapping (Team Cymru / PeeringDB analog).
//!
//! Traceroute returns router IP addresses; turning those into AS-level
//! hops requires an IP-to-AS database, which is imperfect: some address
//! space is announced by a different AS than the one operating the router
//! (provider-assigned interconnect space, IXP fabrics), and some space is
//! unmapped. The paper attributes its 2.28 % multi-catchment sources partly
//! to exactly this error source (§IV-c).
//!
//! We model the database as a per-AS property: a *dirty* AS has a fraction
//! of its router addresses systematically resolving to one of its
//! neighbors (deterministic per AS), and any hop can be unmapped with a
//! small probability.

use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use trackdown_topology::{AsIndex, Asn, Topology};

/// How a single traceroute hop resolved through the database.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HopResolution {
    /// Resolved to the correct AS.
    Correct(Asn),
    /// Resolved to a wrong (neighboring) AS — systematic mis-mapping.
    Mismapped(Asn),
    /// No mapping available.
    Unmapped,
}

impl HopResolution {
    /// The ASN this resolution reports, if any.
    pub fn asn(self) -> Option<Asn> {
        match self {
            HopResolution::Correct(a) | HopResolution::Mismapped(a) => Some(a),
            HopResolution::Unmapped => None,
        }
    }
}

/// Parameters of the simulated database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpToAsConfig {
    /// Seed for dirty-AS selection and per-hop rolls.
    pub seed: u64,
    /// Fraction of ASes whose interconnect space is mis-attributed.
    pub dirty_as_fraction: f64,
    /// Probability that a hop inside a dirty AS resolves to the neighbor.
    pub mismap_prob: f64,
    /// Probability that any hop has no mapping at all.
    pub unmapped_prob: f64,
}

impl Default for IpToAsConfig {
    fn default() -> IpToAsConfig {
        IpToAsConfig {
            seed: 0x1b_2a5,
            dirty_as_fraction: 0.05,
            mismap_prob: 0.3,
            unmapped_prob: 0.02,
        }
    }
}

/// The materialized database simulation.
#[derive(Debug, Clone)]
pub struct IpToAs {
    /// For each AS, the neighbor its dirty space resolves to (if dirty).
    dirty_target: Vec<Option<AsIndex>>,
    mismap_prob: f64,
    unmapped_prob: f64,
    seed: u64,
}

impl IpToAs {
    /// Build the database model for a topology.
    pub fn build(topo: &Topology, cfg: &IpToAsConfig) -> IpToAs {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let dirty_target = topo
            .indices()
            .map(|i| {
                if rng.random::<f64>() < cfg.dirty_as_fraction {
                    let neighbors = topo.neighbors(i);
                    if neighbors.is_empty() {
                        None
                    } else {
                        let k = rng.random_range(0..neighbors.len());
                        Some(neighbors[k].0)
                    }
                } else {
                    None
                }
            })
            .collect();
        IpToAs {
            dirty_target,
            mismap_prob: cfg.mismap_prob,
            unmapped_prob: cfg.unmapped_prob,
            seed: cfg.seed,
        }
    }

    /// True if `i`'s space is partially mis-attributed.
    pub fn is_dirty(&self, i: AsIndex) -> bool {
        self.dirty_target[i.us()].is_some()
    }

    /// Resolve a hop at `true_as`, salted by `salt` (derived from probe,
    /// round, and hop position so repeated measurements of the same router
    /// resolve consistently only when they truly hit the same address).
    pub fn resolve(&self, topo: &Topology, true_as: AsIndex, salt: u64) -> HopResolution {
        let h = crate::mix(self.seed ^ salt ^ ((true_as.0 as u64) << 24));
        let roll = (h % 10_000) as f64 / 10_000.0;
        if roll < self.unmapped_prob {
            return HopResolution::Unmapped;
        }
        if let Some(target) = self.dirty_target[true_as.us()] {
            // Dirty ASes resolve a fixed slice of their space to the
            // neighbor; whether a given observation lands in that slice is
            // a salted deterministic roll.
            let h2 = crate::mix(h ^ 0xD1);
            if ((h2 % 10_000) as f64 / 10_000.0) < self.mismap_prob {
                return HopResolution::Mismapped(topo.asn_of(target));
            }
        }
        HopResolution::Correct(topo.asn_of(true_as))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trackdown_topology::gen::{generate, TopologyConfig};

    fn setup(cfg: &IpToAsConfig) -> (trackdown_topology::Topology, IpToAs) {
        let g = generate(&TopologyConfig::small(6));
        let db = IpToAs::build(&g.topology, cfg);
        (g.topology, db)
    }

    #[test]
    fn clean_database_always_correct() {
        let (topo, db) = setup(&IpToAsConfig {
            seed: 1,
            dirty_as_fraction: 0.0,
            mismap_prob: 0.0,
            unmapped_prob: 0.0,
        });
        for i in topo.indices() {
            for salt in 0..5 {
                assert_eq!(
                    db.resolve(&topo, i, salt),
                    HopResolution::Correct(topo.asn_of(i))
                );
            }
        }
    }

    #[test]
    fn resolution_is_deterministic() {
        let (topo, db) = setup(&IpToAsConfig::default());
        for i in topo.indices().take(20) {
            assert_eq!(db.resolve(&topo, i, 42), db.resolve(&topo, i, 42));
        }
    }

    #[test]
    fn dirty_ases_mismap_to_a_neighbor() {
        let (topo, db) = setup(&IpToAsConfig {
            seed: 3,
            dirty_as_fraction: 1.0,
            mismap_prob: 1.0,
            unmapped_prob: 0.0,
        });
        for i in topo.indices().take(20) {
            assert!(db.is_dirty(i));
            match db.resolve(&topo, i, 7) {
                HopResolution::Mismapped(a) => {
                    let j = topo.index_of(a).unwrap();
                    assert!(topo.linked(i, j), "mismap target must be a neighbor");
                }
                other => panic!("expected mismap, got {other:?}"),
            }
        }
    }

    #[test]
    fn unmapped_probability_dominates() {
        let (topo, db) = setup(&IpToAsConfig {
            seed: 4,
            dirty_as_fraction: 0.0,
            mismap_prob: 0.0,
            unmapped_prob: 1.0,
        });
        assert_eq!(db.resolve(&topo, AsIndex(0), 0), HopResolution::Unmapped);
        assert_eq!(HopResolution::Unmapped.asn(), None);
    }

    #[test]
    fn mismap_rate_roughly_matches_config() {
        let (topo, db) = setup(&IpToAsConfig {
            seed: 5,
            dirty_as_fraction: 1.0,
            mismap_prob: 0.3,
            unmapped_prob: 0.0,
        });
        let mut wrong = 0;
        let mut total = 0;
        for i in topo.indices() {
            for salt in 0..50 {
                total += 1;
                if matches!(db.resolve(&topo, i, salt), HopResolution::Mismapped(_)) {
                    wrong += 1;
                }
            }
        }
        let rate = wrong as f64 / total as f64;
        assert!((0.2..0.4).contains(&rate), "rate={rate}");
    }
}
