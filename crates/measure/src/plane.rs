//! The measurement plane: one object bundling vantage points, the IP-to-AS
//! database, and traceroute fault parameters, turning a routing outcome
//! into *measured* catchments the way the paper's pipeline does.

use crate::mapping::{IpToAs, IpToAsConfig};
use crate::observe::{collect_bgp_feeds, combine_observations, MeasuredCatchments};
use crate::repair::repair_campaign;
use crate::traceroute::{run_campaign, sample_probes, TracerouteConfig};
use crate::vantage::{VantageConfig, VantagePoints};
use serde::{Deserialize, Serialize};
use trackdown_bgp::RoutingOutcome;
use trackdown_topology::{cone::ConeInfo, Asn, Topology};

/// Full measurement-plane configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MeasurementConfig {
    /// Vantage-point sampling.
    pub vantage: VantageConfig,
    /// IP-to-AS database simulation.
    pub ip_to_as: IpToAsConfig,
    /// Traceroute fault injection.
    pub traceroute: TracerouteConfig,
    /// Optional cap on probes used per configuration (the paper was
    /// limited to 1 600 RIPE Atlas probes). `None` = all probe ASes.
    pub probe_budget: Option<usize>,
}

impl MeasurementConfig {
    /// A perfect observation plane: every AS feeds a collector, no faults.
    /// Useful to isolate algorithmic behaviour from measurement noise.
    pub fn perfect() -> MeasurementConfig {
        MeasurementConfig {
            vantage: VantageConfig {
                seed: 0,
                bgp_feed_fraction: 1.0,
                probe_fraction: 0.0,
            },
            ip_to_as: IpToAsConfig {
                seed: 0,
                dirty_as_fraction: 0.0,
                mismap_prob: 0.0,
                unmapped_prob: 0.0,
            },
            traceroute: TracerouteConfig {
                seed: 0,
                hop_unresponsive_prob: 0.0,
                rounds: 1,
                ixp_hop_prob: 0.0,
            },
            probe_budget: None,
        }
    }
}

/// A measurement plane bound to one topology.
#[derive(Debug, Clone)]
pub struct MeasurementPlane {
    /// The selected vantage points.
    pub vantage: VantagePoints,
    db: IpToAs,
    cfg: MeasurementConfig,
}

impl MeasurementPlane {
    /// Build the plane (selects vantage points, materializes the IP-to-AS
    /// model). Deterministic per configuration.
    pub fn new(topo: &Topology, cones: &ConeInfo, cfg: &MeasurementConfig) -> MeasurementPlane {
        MeasurementPlane {
            vantage: VantagePoints::select(topo, cones, &cfg.vantage),
            db: IpToAs::build(topo, &cfg.ip_to_as),
            cfg: cfg.clone(),
        }
    }

    /// The measurement configuration in use.
    pub fn config(&self) -> &MeasurementConfig {
        &self.cfg
    }

    /// Measure catchments for one routing outcome. `config_salt` must be
    /// unique per announcement configuration so fault patterns vary across
    /// configurations but stay reproducible.
    pub fn measure(
        &self,
        topo: &Topology,
        outcome: &RoutingOutcome,
        origin_asn: Asn,
        config_salt: u64,
    ) -> MeasuredCatchments {
        let _span = trackdown_obs::span("measure.measure");
        let bgp = collect_bgp_feeds(topo, outcome, &self.vantage.bgp_feeders, origin_asn);
        let probes = match self.cfg.probe_budget {
            Some(budget) => sample_probes(&self.vantage.probe_ases, budget, config_salt ^ 0xB0),
            None => self.vantage.probe_ases.clone(),
        };
        let campaign = run_campaign(
            topo,
            &self.db,
            outcome,
            &probes,
            &self.cfg.traceroute,
            config_salt,
        );
        let corpus: Vec<Vec<Asn>> = bgp.iter().map(|o| o.path.clone()).collect();
        let repaired = repair_campaign(&campaign, &corpus);
        let measured = combine_observations(topo, &bgp, &repaired);
        trackdown_obs::counter!("measure.measurements").inc();
        trackdown_obs::counter!("measure.bgp_observations").add(bgp.len() as u64);
        trackdown_obs::counter!("measure.observed_sources").add(measured.observed_count() as u64);
        measured
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trackdown_bgp::{
        BgpEngine, Catchments, EngineConfig, LinkAnnouncement, OriginAs, PolicyConfig,
        SnapshotDetail,
    };
    use trackdown_topology::gen::{generate, TopologyConfig};

    fn clean_engine_cfg() -> EngineConfig {
        EngineConfig {
            policy: PolicyConfig {
                seed: 2,
                violator_fraction: 0.0,
                no_loop_prevention_fraction: 0.0,
                tier1_poison_filtering: false,
                extensions: Default::default(),
            },
            ..EngineConfig::default()
        }
    }

    #[test]
    fn perfect_plane_reproduces_true_catchments() {
        let g = generate(&TopologyConfig::small(13));
        let cones = ConeInfo::compute(&g.topology);
        let origin = OriginAs::peering_style(&g, 3);
        let engine = BgpEngine::new(&g.topology, &clean_engine_cfg());
        let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let out = engine
            .propagate_config_detailed(&origin, &anns, 200, SnapshotDetail::Full)
            .unwrap();
        let plane = MeasurementPlane::new(&g.topology, &cones, &MeasurementConfig::perfect());
        let m = plane.measure(&g.topology, &out, origin.asn, 0);
        let truth = Catchments::from_control_plane(&out);
        assert_eq!(m.observed_count(), g.topology.num_ases());
        assert_eq!(m.multi_catchment_rate(), 0.0);
        for i in g.topology.indices() {
            assert_eq!(m.catchments.get(i), truth.get(i), "AS index {i:?}");
        }
    }

    #[test]
    fn noisy_plane_still_mostly_correct() {
        let g = generate(&TopologyConfig::medium(13));
        let cones = ConeInfo::compute(&g.topology);
        let origin = OriginAs::peering_style(&g, 4);
        let engine = BgpEngine::new(&g.topology, &clean_engine_cfg());
        let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let out = engine
            .propagate_config_detailed(&origin, &anns, 200, SnapshotDetail::Full)
            .unwrap();
        // Crank up the IP-to-AS dirtiness so the multi-catchment effect is
        // reliably visible at this small scale (default rates can
        // legitimately produce zero conflicts on short paths).
        let mcfg = MeasurementConfig {
            ip_to_as: IpToAsConfig {
                dirty_as_fraction: 0.2,
                ..IpToAsConfig::default()
            },
            ..MeasurementConfig::default()
        };
        let plane = MeasurementPlane::new(&g.topology, &cones, &mcfg);
        let m = plane.measure(&g.topology, &out, origin.asn, 1);
        let truth = Catchments::from_control_plane(&out);
        let mut observed = 0usize;
        let mut correct = 0usize;
        for i in g.topology.indices() {
            if let Some(link) = m.catchments.get(i) {
                observed += 1;
                if truth.get(i) == Some(link) {
                    correct += 1;
                }
            }
        }
        // Coverage is partial, like the paper's 1 885-AS dataset versus
        // the whole Internet; what matters is that observed sources are
        // assigned accurately.
        assert!(observed > g.topology.num_ases() / 4, "observed={observed}");
        let accuracy = correct as f64 / observed as f64;
        assert!(accuracy > 0.9, "accuracy={accuracy}");
        // Noise produces at least some multi-catchment sources, like the
        // paper's 2.28 %.
        assert!(m.multi_catchment_rate() > 0.0);
        assert!(m.multi_catchment_rate() < 0.2);
    }

    #[test]
    fn measurement_is_deterministic_per_salt() {
        let g = generate(&TopologyConfig::small(14));
        let cones = ConeInfo::compute(&g.topology);
        let origin = OriginAs::peering_style(&g, 3);
        let engine = BgpEngine::new(&g.topology, &clean_engine_cfg());
        let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let out = engine
            .propagate_config_detailed(&origin, &anns, 200, SnapshotDetail::Full)
            .unwrap();
        let plane = MeasurementPlane::new(&g.topology, &cones, &MeasurementConfig::default());
        let a = plane.measure(&g.topology, &out, origin.asn, 5);
        let b = plane.measure(&g.topology, &out, origin.asn, 5);
        assert_eq!(a, b);
        // Different salts change the raw fault pattern (repair and voting
        // may still converge to the same catchments, which is the point of
        // the pipeline — so compare the raw campaigns, not the result).
        let probes = &plane.vantage.probe_ases;
        let db = IpToAs::build(&g.topology, &plane.cfg.ip_to_as);
        let c5 = run_campaign(&g.topology, &db, &out, probes, &plane.cfg.traceroute, 5);
        let c6 = run_campaign(&g.topology, &db, &out, probes, &plane.cfg.traceroute, 6);
        assert_ne!(c5, c6, "different salts should alter fault patterns");
    }

    #[test]
    fn probe_budget_limits_campaign() {
        let g = generate(&TopologyConfig::small(15));
        let cones = ConeInfo::compute(&g.topology);
        let origin = OriginAs::peering_style(&g, 3);
        let engine = BgpEngine::new(&g.topology, &clean_engine_cfg());
        let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let out = engine
            .propagate_config_detailed(&origin, &anns, 200, SnapshotDetail::Full)
            .unwrap();
        let mut cfg = MeasurementConfig {
            vantage: VantageConfig {
                seed: 2,
                bgp_feed_fraction: 0.0,
                probe_fraction: 1.0,
            },
            ..MeasurementConfig::default()
        };
        cfg.probe_budget = Some(5);
        // Tier-1s still feed collectors; rely on traceroutes otherwise.
        let plane = MeasurementPlane::new(&g.topology, &cones, &cfg);
        let m = plane.measure(&g.topology, &out, origin.asn, 3);
        // Coverage should be far from complete with just 5 probes (the
        // tier-1 feeders cover the core, not every stub).
        assert!(m.observed_count() < g.topology.num_ases());
    }
}
