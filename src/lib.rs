//! # trackdown-suite
//!
//! Umbrella crate for the *trackdown* stack — a from-scratch Rust
//! reproduction of **"Tracking Down Sources of Spoofed IP Packets"**
//! (Fonseca, Cunha, Fazzion, Meira Jr., Junior, Ferreira, Katz-Bassett;
//! IFIP Networking 2019).
//!
//! It re-exports the five library crates so examples and downstream users
//! need a single dependency:
//!
//! * [`topology`] — AS-level Internet topology substrate;
//! * [`bgp`] — deterministic BGP propagation engine, multi-PoP origin,
//!   catchments;
//! * [`measure`] — simulated observation plane (feeds, traceroute, repair,
//!   visibility imputation);
//! * [`traffic`] — spoofed-traffic substrate (placement, packets,
//!   honeypot, classification);
//! * [`core`] — the paper's contribution: configuration generation,
//!   catchment clustering, localization, scheduling, prediction;
//! * [`obs`] — in-tree observability: metrics registry, span timers,
//!   JSONL run manifests (see DESIGN.md §Observability).
//!
//! See the [`prelude`] for the names most programs want.
//!
//! ```
//! use trackdown_suite::prelude::*;
//!
//! // A small synthetic Internet and a 4-PoP origin network.
//! let world = generate(&TopologyConfig::small(7));
//! let origin = OriginAs::peering_style(&world, 4);
//! let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
//!
//! // Deploy the paper's announcement schedule and cluster the catchments.
//! let schedule = full_schedule(&world.topology, &origin, &GeneratorParams::default());
//! let campaign = run_campaign(
//!     &engine, &origin, &schedule, CatchmentSource::ControlPlane, None, 200);
//! assert!(campaign.clustering.mean_size() >= 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use trackdown_bgp as bgp;
pub use trackdown_core as core;
pub use trackdown_measure as measure;
pub use trackdown_obs as obs;
pub use trackdown_topology as topology;
pub use trackdown_traffic as traffic;

/// The names most programs using the stack need.
pub mod prelude {
    pub use trackdown_bgp::{
        diff_injections, BgpEngine, CampaignSession, Catchments, Community, CommunitySet,
        DeploymentBias, EngineConfig, ExtensionConfig, ExtensionDeployment, LinkAnnouncement,
        LinkId, OriginAs, PolicyConfig, PolicyExtension, Prefix, PropagationRanks, RouteChange,
        RoutingOutcome, SnapshotDetail,
    };
    pub use trackdown_core::generator::{full_schedule, GeneratorParams};
    pub use trackdown_core::localize::{
        estimate_cluster_volumes, estimate_cluster_volumes_acc, estimate_cluster_volumes_rescan,
        fit_link_volumes, link_volume_matrix, rank_suspects, rank_suspects_acc,
        rank_suspects_rescan, run_campaign, run_campaign_mode, run_campaign_parallel,
        run_campaign_sharded, suspect_ases, AttributionIndex, Campaign, CampaignMode,
        CampaignStats, CatchmentSource, RankedSuspects, ShardPlan,
    };
    pub use trackdown_core::{AnnouncementConfig, Clustering, Dataset, Phase};
    pub use trackdown_measure::{MeasurementConfig, MeasurementPlane};
    pub use trackdown_topology::cone::ConeInfo;
    pub use trackdown_topology::gen::{generate, GeneratedTopology, TopologyConfig};
    pub use trackdown_topology::{AsIndex, AsPath, Asn, Topology};
    pub use trackdown_traffic::{
        ingest_stream, place_sources, spoofed_flows, BatchedDenseAccumulator, CountMinSketch,
        FlowConfig, Honeypot, HoneypotConfig, PlacedSources, SketchAccumulator, SourcePlacement,
        VolumeAccumulator,
    };
}
