//! A guided tour of the catchment-measurement pipeline (§IV-b/c/d):
//! raw noisy traceroutes → IXP stripping → gap repair → vote combining →
//! visibility imputation, with accuracy printed after each stage.
//!
//! ```sh
//! cargo run --release --example measurement_pipeline
//! ```

use trackdown_suite::bgp::Catchments;
use trackdown_suite::measure::{
    collect_bgp_feeds, combine_observations, impute_visibility, repair_campaign, run_campaign,
    IpToAs, IpToAsConfig, TracerouteConfig, UpdateStream, VantageConfig, VantagePoints,
};
use trackdown_suite::prelude::*;

fn main() {
    let world = generate(&TopologyConfig::medium(21));
    let origin = OriginAs::peering_style(&world, 5);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let cones = ConeInfo::compute(&world.topology);

    // One configuration: the full anycast baseline.
    let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
    let outcome = engine.propagate_config(&origin, &anns, 200).unwrap();
    let truth = Catchments::from_control_plane(&outcome);
    println!(
        "ground truth: {} ASes reachable, convergence depth {} rounds",
        outcome.reachable_count(),
        outcome.rounds
    );

    // Collectors see the convergence burst before the tables settle.
    let vantage = VantagePoints::select(
        &world.topology,
        &cones,
        &VantageConfig {
            seed: 4,
            bgp_feed_fraction: 0.08,
            probe_fraction: 0.3,
        },
    );
    let stream = UpdateStream::collect(&outcome, &vantage.bgp_feeders);
    println!(
        "collectors: {} feeders sent {} UPDATEs over {} rounds ({} path explorations)",
        vantage.bgp_feeders.len(),
        stream.len(),
        stream.convergence_round() + 1,
        stream.path_explorations(),
    );

    // Noisy traceroutes: unresponsive hops, IP-to-AS errors, IXP fabric
    // addresses.
    let db = IpToAs::build(&world.topology, &IpToAsConfig::default());
    let tr_cfg = TracerouteConfig::default();
    let campaign = run_campaign(
        &world.topology,
        &db,
        &outcome,
        &vantage.probe_ases,
        &tr_cfg,
        1,
    );
    let total_hops: usize = campaign.iter().map(|t| t.hops.len()).sum();
    let missing: usize = campaign
        .iter()
        .flat_map(|t| &t.hops)
        .filter(|h| h.observed.is_none())
        .count();
    println!(
        "\ntraceroutes: {} measurements, {} hops, {:.1}% unresponsive",
        campaign.len(),
        total_hops,
        missing as f64 / total_hops as f64 * 100.0
    );

    // Repair with the BGP corpus.
    let bgp = collect_bgp_feeds(&world.topology, &outcome, &vantage.bgp_feeders, origin.asn);
    let corpus: Vec<Vec<Asn>> = bgp.iter().map(|o| o.path.clone()).collect();
    let repaired = repair_campaign(&campaign, &corpus);
    let (rep, ign, ixp) = repaired.iter().fold((0, 0, 0), |(r, i, x), p| {
        (r + p.repaired_hops, i + p.ignored_hops, x + p.ixp_hops)
    });
    println!("repair: {rep} gap hops recovered, {ign} ignored, {ixp} IXP-fabric hops stripped");

    // Combine votes and compare against truth.
    let measured = combine_observations(&world.topology, &bgp, &repaired);
    let mut agree = 0usize;
    let mut observed = 0usize;
    for i in world.topology.indices() {
        if let Some(l) = measured.catchments.get(i) {
            observed += 1;
            if truth.get(i) == Some(l) {
                agree += 1;
            }
        }
    }
    println!(
        "\ncombined: {} of {} ASes observed ({:.1}% of the Internet), accuracy {:.1}%, \
         multi-catchment rate {:.2}%",
        observed,
        world.topology.num_ases(),
        observed as f64 / world.topology.num_ases() as f64 * 100.0,
        agree as f64 / observed as f64 * 100.0,
        measured.multi_catchment_rate() * 100.0,
    );

    // Visibility imputation across a two-config mini-campaign.
    let second_cfg: Vec<_> = origin
        .link_ids()
        .skip(1)
        .map(LinkAnnouncement::plain)
        .collect();
    let second_outcome = engine.propagate_config(&origin, &second_cfg, 200).unwrap();
    let second_campaign = run_campaign(
        &world.topology,
        &db,
        &second_outcome,
        &vantage.probe_ases,
        &tr_cfg,
        2,
    );
    let second_bgp = collect_bgp_feeds(
        &world.topology,
        &second_outcome,
        &vantage.bgp_feeders,
        origin.asn,
    );
    let second_corpus: Vec<Vec<Asn>> = second_bgp.iter().map(|o| o.path.clone()).collect();
    let second_repaired = repair_campaign(&second_campaign, &second_corpus);
    let second_measured = combine_observations(&world.topology, &second_bgp, &second_repaired);
    let mut series = vec![measured, second_measured];
    let stats = impute_visibility(&mut series, 0);
    println!(
        "imputation: analysis set {} sources, {} holes filled via smax, {} unfillable",
        stats.analysis_sources, stats.imputed_assignments, stats.unfilled_assignments,
    );
}
