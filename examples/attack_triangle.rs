//! The full amplification-attack triangle, contrasting two vantages:
//!
//! * the **victim** sees gigabits of NTP/DNS responses arriving from
//!   *reflector* ASes — the true origins appear nowhere in its logs;
//! * the **origin network** running the paper's techniques sees the
//!   spoofed *queries* on its honeypot prefix, attributes per-link
//!   volumes, and names the attacker's cluster.
//!
//! This is exactly why the paper works from the reflector side of the
//! triangle: "locating the origins of reflection attacks … is challenging
//! as attack origins send spoofed packets" (§VII-a).
//!
//! ```sh
//! cargo run --release --example attack_triangle
//! ```

use trackdown_suite::prelude::*;
use trackdown_suite::traffic::{
    reflect_attack, scatter_reflectors, Honeypot, HoneypotConfig, ReflectorKind,
};

fn main() {
    let world = generate(&TopologyConfig::medium(77));
    let origin = OriginAs::peering_style(&world, 5);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());

    // One compromised server somewhere.
    let all: Vec<AsIndex> = world.topology.indices().collect();
    let placed = place_sources(world.topology.num_ases(), &all, SourcePlacement::Single, 99);
    let attacker = placed.source_ases().next().unwrap();

    // 40 open reflectors (the honeypot is one of "them" from the
    // attacker's point of view).
    let reflectors = scatter_reflectors(
        &all,
        40,
        &[
            ReflectorKind::Ntp,
            ReflectorKind::Dns,
            ReflectorKind::Memcached,
        ],
        7,
    );
    let victim_ip = u32::from_be_bytes([203, 0, 113, 80]);
    let (victim, _query_flows) = reflect_attack(&placed, &reflectors, victim_ip, 50_000_000, 3);

    println!("== the victim's view ==");
    println!(
        "{} bytes/s of amplified responses ({}x amplification) from {} reflector ASes:",
        victim.total_bytes,
        victim.overall_amplification() as u64,
        victim.per_reflector_as.len(),
    );
    for (asn_index, bytes) in victim.per_reflector_as.iter().take(5) {
        println!("  {}  {:>14} B/s", world.topology.asn_of(*asn_index), bytes);
    }
    println!(
        "  … true origin {} appears nowhere above.\n",
        world.topology.asn_of(attacker)
    );

    println!("== the origin network's view (the paper's techniques) ==");
    // The origin's honeypot attracts the same attacker's queries (its
    // prefix looks like one more reflector); deploy the schedule and
    // correlate.
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 2,
            max_poison_configs: Some(40),
        },
    );
    let campaign = run_campaign(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
    );
    let honeypot = Honeypot::new(HoneypotConfig::default());
    let flows = spoofed_flows(
        &placed,
        victim_ip,
        honeypot.config().prefix,
        &FlowConfig::default(),
    );
    let link_volumes: Vec<Vec<u64>> = fit_link_volumes(
        &campaign,
        campaign
            .catchments
            .iter()
            .map(|cat| {
                honeypot
                    .observe(cat, origin.num_links(), &flows)
                    .per_link_bytes
            })
            .collect(),
    );
    let estimates = estimate_cluster_volumes(&campaign, &link_volumes, 10);
    println!(
        "{} configurations deployed; suspect clusters: {}",
        schedule.len(),
        estimates.len()
    );
    for e in &estimates {
        let members: Vec<String> = e
            .members
            .iter()
            .map(|&m| world.topology.asn_of(m).to_string())
            .collect();
        println!(
            "  cluster #{:<4} volume in [{}, {}]  members: {}",
            e.cluster,
            e.lower,
            e.upper,
            members.join(" ")
        );
    }
    let found = estimates.iter().any(|e| e.members.contains(&attacker));
    assert!(found, "true origin escaped localization");
    println!(
        "\nthe true origin {} is inside a named suspect cluster — attribution the\n\
         victim could never produce from its own logs.",
        world.topology.asn_of(attacker)
    );
}
