//! Online localization: when an attack is underway, configuration order
//! matters. Compare deploying configurations in random order against the
//! paper's greedy iterative algorithm (§V-C), and show the
//! traffic-weighted extension (future-work item (i)) shrinking the
//! *attacker anonymity set* — the volume-weighted expected cluster size —
//! faster than the volume-blind greedy.
//!
//! ```sh
//! cargo run --release --example schedule_optimizer
//! ```

use trackdown_suite::core::schedule::{
    greedy_schedule, mean_size_objective, random_schedule_stats, traffic_weighted_objective,
};
use trackdown_suite::core::Clustering;
use trackdown_suite::prelude::*;

/// Replay a deployment order, measuring `metric` after each step.
fn replay(
    order: &[usize],
    catchments: &[Catchments],
    tracked: &[AsIndex],
    metric: impl Fn(&Clustering) -> f64,
) -> Vec<f64> {
    let mut clustering = Clustering::single(tracked.to_vec());
    order
        .iter()
        .map(|&c| {
            clustering.refine(&catchments[c]);
            metric(&clustering)
        })
        .collect()
}

fn main() {
    let world = generate(&TopologyConfig::medium(5));
    let origin = OriginAs::peering_style(&world, 5);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 2,
            max_poison_configs: Some(40),
        },
    );
    // Catchments measured ahead of the attack (§V-C's premise).
    let campaign = run_campaign(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
    );

    // The ongoing attack: a small botnet.
    let attackers = place_sources(
        world.topology.num_ases(),
        &campaign.tracked,
        SourcePlacement::Uniform { total: 10 },
        2024,
    );
    let volume = attackers.volume_per_as(1_000_000);

    let steps = 15usize;
    let rnd = random_schedule_stats(&campaign.catchments, &campaign.tracked, 100, 99);
    let (greedy_order, greedy_mean) = greedy_schedule(
        &campaign.catchments,
        &campaign.tracked,
        steps,
        mean_size_objective,
    );
    let weighted_obj = traffic_weighted_objective(&volume);
    let (weighted_order, weighted_scores) = greedy_schedule(
        &campaign.catchments,
        &campaign.tracked,
        steps,
        &weighted_obj,
    );
    // Evaluate the volume-blind greedy order under the anonymity metric,
    // for an apples-to-apples comparison with the weighted greedy.
    let greedy_anonymity = replay(
        &greedy_order,
        &campaign.catchments,
        &campaign.tracked,
        &weighted_obj,
    );

    println!("objective 1 — mean cluster size (the paper's Figure 8):");
    println!("{:>3}  {:>13}  {:>8}", "k", "random median", "greedy");
    for (k, g) in greedy_mean.iter().enumerate() {
        println!("{:>3}  {:>13.2}  {:>8.2}", k + 1, rnd.median[k], g);
    }
    let k10 = 9.min(steps - 1);
    println!(
        "after 10 configs: random {:.1} vs greedy {:.1} ASes (the paper reports 7.8 vs 3.5)\n",
        rnd.median[k10], greedy_mean[k10]
    );

    println!(
        "objective 2 — attacker anonymity set (volume-weighted expected cluster size,\n\
         future-work extension (i)):"
    );
    println!(
        "{:>3}  {:>13}  {:>16}",
        "k", "greedy (mean)", "greedy (weighted)"
    );
    for (k, (anon, weighted)) in greedy_anonymity.iter().zip(&weighted_scores).enumerate() {
        println!("{:>3}  {:>13.2}  {:>16.2}", k + 1, anon, weighted);
    }
    let dominated = (0..steps)
        .filter(|&k| weighted_scores[k] <= greedy_anonymity[k] + 1e-9)
        .count();
    println!(
        "\nthe traffic-weighted order is at least as good on {dominated}/{steps} steps: \
         it spends announcements splitting the clusters that actually hide attackers"
    );
    let _ = weighted_order;
}
