//! Quickstart: build a synthetic Internet, deploy the paper's announcement
//! schedule, and localize a planted spoofer.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use trackdown_suite::prelude::*;

fn main() {
    // 1. A synthetic Internet (~600 ASes) and an origin network with five
    //    peering links, PEERING-style.
    let world = generate(&TopologyConfig::medium(42));
    let origin = OriginAs::peering_style(&world, 5);
    println!(
        "world: {} ASes, {} links",
        world.topology.num_ases(),
        world.topology.num_links()
    );
    println!("origin: {} with {} PoPs", origin.asn, origin.num_links());
    for link in &origin.links {
        println!("  {} via provider {}", link.pop, link.provider);
    }

    // 2. The three-phase announcement schedule (§III-A of the paper).
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 2,
            max_poison_configs: Some(40),
        },
    );
    println!("\nschedule: {} announcement configurations", schedule.len());
    println!("first: {}", schedule[0]);
    println!("last:  {}", schedule.last().unwrap());

    // 3. Deploy every configuration and cluster the catchments.
    let campaign = run_campaign(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
    );
    let stats = campaign.clustering.stats();
    println!(
        "\nclusters: {} over {} sources (mean {:.2}, p90 {}, max {}); {:.1}% singletons",
        campaign.clustering.num_clusters(),
        campaign.tracked.len(),
        campaign.clustering.mean_size(),
        stats.p90,
        stats.max,
        campaign.clustering.singleton_fraction() * 100.0,
    );

    // 4. Plant one spoofing source and correlate honeypot volumes.
    let attacker = campaign.tracked[campaign.tracked.len() / 3];
    let mut volume = vec![0u64; world.topology.num_ases()];
    volume[attacker.us()] = 5_000_000;
    let vols = link_volume_matrix(&campaign, &volume);
    let suspects = rank_suspects(&campaign, &vols);
    let top = &suspects[0];
    println!(
        "\nplanted spoofer: {} — top suspect cluster has {} member(s):",
        world.topology.asn_of(attacker),
        top.members.len(),
    );
    for &m in &top.members {
        println!("  {}", world.topology.asn_of(m));
    }
    assert!(top.members.contains(&attacker), "localization failed");
    println!("\nthe planted source is inside the top suspect cluster ✓");
}
