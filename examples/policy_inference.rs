//! Routing-policy inference from the campaign dataset — the §VI claim
//! that the paper's announcement techniques "significantly speed up (and
//! scale) inference of routing policies" because every configuration
//! contributes new, different AS-paths.
//!
//! We infer AS relationships (Gao's degree-based algorithm) from the BGP
//! feeds observed (a) under the baseline anycast alone and (b) under the
//! full multi-configuration campaign, then score both against the
//! ground-truth topology.
//!
//! ```sh
//! cargo run --release --example policy_inference
//! ```

use trackdown_suite::measure::collect_bgp_feeds;
use trackdown_suite::prelude::*;
use trackdown_suite::topology::infer::{infer_relationships, score_inference, InferenceParams};

fn main() {
    let world = generate(&TopologyConfig::medium(33));
    let origin = OriginAs::peering_style(&world, 5);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    // Every AS exports its table: isolate the *route diversity* effect
    // from vantage-coverage effects.
    let feeders: Vec<AsIndex> = world.topology.indices().collect();

    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 2,
            max_poison_configs: Some(40),
        },
    );

    let mut corpus: Vec<Vec<Asn>> = Vec::new();
    let report = |label: &str, corpus: &[Vec<Asn>]| {
        let inferred = infer_relationships(corpus, &InferenceParams::default());
        let (evaluated, correct) = score_inference(&world.topology, &inferred);
        println!(
            "{label:<28} paths {:>6}  links inferred {:>5}  coverage {:>5.1}%  accuracy {:>5.1}%",
            corpus.len(),
            inferred.len(),
            evaluated as f64 / world.topology.num_links() as f64 * 100.0,
            correct as f64 / evaluated.max(1) as f64 * 100.0,
        );
    };

    for (k, cfg) in schedule.iter().enumerate() {
        let outcome = engine
            .propagate_config(&origin, &cfg.to_link_announcements(), 200)
            .unwrap();
        for obs in collect_bgp_feeds(&world.topology, &outcome, &feeders, origin.asn) {
            if !corpus.contains(&obs.path) {
                corpus.push(obs.path);
            }
        }
        if k == 0 {
            report("baseline anycast only:", &corpus);
        } else if k == 9 {
            report("after 10 configurations:", &corpus);
        }
    }
    report(
        &format!("full campaign ({} configs):", schedule.len()),
        &corpus,
    );
    println!(
        "\nroute diversity from systematic announcement changes raises the number of\n\
         distinct paths and therefore the fraction of the AS graph whose business\n\
         relationships an observer can infer — the paper's §VI reuse claim."
    );
}
