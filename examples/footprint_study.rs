//! How much does the peering footprint matter? Deploy the same technique
//! from origins with 3–7 PoPs on the same synthetic Internet and compare
//! localization precision — the §V-B question a network operator would
//! ask before investing in new PoPs.
//!
//! ```sh
//! cargo run --release --example footprint_study
//! ```

use trackdown_suite::prelude::*;

fn main() {
    let world = generate(&TopologyConfig::medium(99));
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    println!(
        "world: {} ASes; comparing origins with 3..=7 PoPs\n",
        world.topology.num_ases()
    );
    println!(
        "{:>4}  {:>8}  {:>10}  {:>10}  {:>9}",
        "PoPs", "configs", "mean size", "singletons", "p90"
    );
    for pops in 3..=7usize {
        let origin = OriginAs::peering_style(&world, pops);
        let schedule = full_schedule(
            &world.topology,
            &origin,
            &GeneratorParams {
                max_removals: 2,
                max_poison_configs: Some(30),
            },
        );
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        let stats = campaign.clustering.stats();
        println!(
            "{:>4}  {:>8}  {:>10.3}  {:>9.1}%  {:>9}",
            pops,
            schedule.len(),
            campaign.clustering.mean_size(),
            campaign.clustering.singleton_fraction() * 100.0,
            stats.p90,
        );
    }
    println!(
        "\nmore PoPs => more configurations and more route diversity => smaller clusters,\n\
         the paper's conclusion that larger footprints localize better (§V-B)"
    );
}
