//! Explore BGP poisoning mechanics — the paper's Figure 2 scenario.
//!
//! Picks a neighbor `u` of one of the origin's transit providers `n`,
//! poisons it on the announcement through `n`, and shows which ASes were
//! forced onto other peering links. Also demonstrates the failure mode the
//! paper calls out: ASes with BGP loop prevention disabled ignore the
//! poison entirely.
//!
//! ```sh
//! cargo run --release --example poisoning_explorer
//! ```

use trackdown_suite::bgp::Catchments;
use trackdown_suite::core::generator::poison_targets;
use trackdown_suite::prelude::*;

fn catchments_for(
    engine: &BgpEngine<'_>,
    origin: &OriginAs,
    config: &AnnouncementConfig,
) -> Catchments {
    let out = engine
        .propagate_config(origin, &config.to_link_announcements(), 200)
        .expect("valid config");
    Catchments::from_control_plane(&out)
}

fn main() {
    let world = generate(&TopologyConfig::medium(11));
    let origin = OriginAs::peering_style(&world, 5);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());

    let targets = poison_targets(&world.topology, &origin);
    println!(
        "{} poisoning targets (provider neighbors) available",
        targets.len()
    );

    // Baseline: plain anycast from every link.
    let baseline_cfg = AnnouncementConfig::anycast_all(origin.num_links());
    let baseline = catchments_for(&engine, &origin, &baseline_cfg);

    // Try targets until one actually moves traffic (some neighbors carry
    // no catchment traffic for the prefix, some targets are poison-immune).
    let mut shown = 0;
    for t in &targets {
        let cfg =
            AnnouncementConfig::anycast_all(origin.num_links()).with_poison(t.via, vec![t.target]);
        let poisoned = catchments_for(&engine, &origin, &cfg);
        let moved: Vec<AsIndex> = world
            .topology
            .indices()
            .filter(|&i| {
                baseline.get(i).is_some()
                    && poisoned.get(i).is_some()
                    && baseline.get(i) != poisoned.get(i)
            })
            .collect();
        if moved.is_empty() {
            continue;
        }
        shown += 1;
        println!(
            "\npoisoning {} (neighbor of provider {} on link {}):",
            t.target, t.provider, t.via
        );
        println!("  {} ASes changed catchment; first few:", moved.len());
        for &i in moved.iter().take(5) {
            println!(
                "    {}: {} -> {}",
                world.topology.asn_of(i),
                baseline
                    .get(i)
                    .map(|l| origin.links[l.us()].pop.clone())
                    .unwrap(),
                poisoned
                    .get(i)
                    .map(|l| origin.links[l.us()].pop.clone())
                    .unwrap(),
            );
        }
        // The poisoned AS itself must not route via the poisoned link's
        // announcement if it runs loop prevention.
        if let Some(ti) = world.topology.index_of(t.target) {
            println!(
                "  poisoned AS {} now in catchment {:?}",
                t.target,
                poisoned.get(ti).map(|l| origin.links[l.us()].pop.clone()),
            );
        }
        if shown >= 3 {
            break;
        }
    }

    // Failure mode: a world where every AS disables loop prevention.
    let immune_cfg = EngineConfig {
        policy: PolicyConfig {
            no_loop_prevention_fraction: 1.0,
            ..PolicyConfig::default()
        },
        ..EngineConfig::default()
    };
    let immune_engine = BgpEngine::new(&world.topology, &immune_cfg);
    let t = &targets[0];
    let cfg =
        AnnouncementConfig::anycast_all(origin.num_links()).with_poison(t.via, vec![t.target]);
    let a = catchments_for(&immune_engine, &origin, &baseline_cfg);
    let b = catchments_for(&immune_engine, &origin, &cfg);
    let moved = world
        .topology
        .indices()
        .filter(|&i| a.get(i) != b.get(i))
        .count();
    println!(
        "\nwith loop prevention disabled everywhere, poisoning {} moves {} ASes \
         (best-effort, as §III-A-c warns)",
        t.target, moved
    );
}
