//! An amplification-DDoS localization scenario end to end, down to the
//! packet level: attackers bounce NTP-style queries with a spoofed victim
//! address off the origin's honeypot prefix; the origin deploys
//! announcement configurations, reads per-link honeypot volumes, and
//! narrows the sources down to clusters — the Figure 1 narrative.
//!
//! ```sh
//! cargo run --release --example amplification_attack
//! ```

use trackdown_suite::bgp::Catchments;
use trackdown_suite::prelude::*;
use trackdown_suite::traffic::{claimed_as, UdpPacket};

fn main() {
    let world = generate(&TopologyConfig::medium(7));
    let origin = OriginAs::peering_style(&world, 5);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());

    // Attackers: a handful of compromised hosts — amplification attacks
    // usually originate from few sources (AmpPot, §I), which is the regime
    // the paper's techniques are designed for.
    let all: Vec<AsIndex> = world.topology.indices().collect();
    let placed = place_sources(
        world.topology.num_ases(),
        &all,
        SourcePlacement::Pareto {
            total: 8,
            alpha: trackdown_suite::traffic::pareto_shape_80_20(),
        },
        1337,
    );
    println!(
        "botnet: {} bots across {} ASes",
        placed.total(),
        placed.num_source_ases()
    );

    // The honeypot on the experiment prefix, AmpPot-style.
    let honeypot = Honeypot::new(HoneypotConfig::default());
    let victim = u32::from_be_bytes([203, 0, 113, 50]);
    let flows = spoofed_flows(
        &placed,
        victim,
        honeypot.config().prefix,
        &FlowConfig::default(),
    );

    // Show one actual wire packet: spoofed source, honeypot destination.
    let wire = flows[0].sample_packet().encode();
    let pkt = UdpPacket::decode(wire.clone()).expect("valid packet");
    println!(
        "sample query packet: {} bytes, spoofed src {}.{}.{}.{} -> dst port {} (claimed AS: {:?})",
        wire.len(),
        pkt.src_ip >> 24 & 0xff,
        pkt.src_ip >> 16 & 0xff,
        pkt.src_ip >> 8 & 0xff,
        pkt.src_ip & 0xff,
        pkt.dst_port,
        claimed_as(pkt.src_ip),
    );

    // Deploy the schedule; for each configuration record what the
    // honeypot sees per ingress link (data plane).
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 2,
            max_poison_configs: Some(40),
        },
    );
    let campaign = run_campaign(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
    );
    let mut link_volumes = Vec::with_capacity(campaign.catchments.len());
    for cat in &campaign.catchments {
        // In deployment the data plane is what the honeypot sees; control
        // and data planes agree here, so reuse the campaign catchments.
        let report = honeypot.observe(cat, origin.num_links(), &flows);
        link_volumes.push(report.per_link_bytes.clone());
    }
    // Honeypot rows are origin-width; trim to the attribution plane's
    // exact width contract.
    let link_volumes = fit_link_volumes(&campaign, link_volumes);
    // Narrate the first three configurations like Figure 1.
    for (k, vols) in link_volumes.iter().take(3).enumerate() {
        let hottest = vols
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(i, _)| i)
            .unwrap();
        println!(
            "config {}: {} -> spoofed bytes per link {:?} (hottest: {})",
            k + 1,
            campaign.configs[k],
            vols,
            origin.links[hottest].pop,
        );
    }

    // Correlate volumes across all configurations: first the simple
    // min-bound filter, then interval constraint propagation over the
    // volume-conservation system (the multi-source refinement).
    let simple = rank_suspects(&campaign, &link_volumes);
    let refined = estimate_cluster_volumes(&campaign, &link_volumes, 10);
    let named: Vec<AsIndex> = refined
        .iter()
        .flat_map(|e| e.members.iter().copied())
        .collect();
    let actual: Vec<AsIndex> = placed.source_ases().collect();
    let found = actual.iter().filter(|a| named.contains(a)).count();
    println!(
        "\nsuspects: min-bound filter leaves {} clusters; constraint propagation {} clusters \
         naming {} ASes; {}/{} true source ASes inside",
        simple.len(),
        refined.len(),
        named.len(),
        found,
        actual.len(),
    );
    println!(
        "narrowing: {} candidate ASes -> {} named suspects ({:.1}% of the Internet)",
        world.topology.num_ases(),
        named.len(),
        named.len() as f64 / world.topology.num_ases() as f64 * 100.0,
    );
    for e in refined.iter().take(5) {
        println!(
            "  cluster #{}: {} AS(es), proven volume in [{}, {}] bytes",
            e.cluster,
            e.members.len(),
            e.lower,
            e.upper,
        );
    }

    // Sanity: every attacker AS observable at baseline must be named.
    let baseline: &Catchments = &campaign.catchments[0];
    let observable = actual
        .iter()
        .filter(|&&a| baseline.get(a).is_some())
        .count();
    assert!(found >= observable.min(actual.len()) * 9 / 10);
}
