//! Golden determinism pins: exact values for fixed seeds, guarding the
//! reproducibility promise (identical seeds ⇒ identical figures) against
//! accidental changes to RNG consumption order, tiebreak salting, or
//! iteration order.
//!
//! If a deliberate algorithm change breaks these, regenerate the constants
//! and say so in the commit — they exist to make silent drift loud.

use trackdown_suite::prelude::*;

fn campaign() -> (GeneratedTopology, OriginAs, Campaign) {
    let world = generate(&TopologyConfig::small(0xD00D));
    let origin = OriginAs::peering_style(&world, 4);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 2,
            max_poison_configs: Some(10),
        },
    );
    let campaign = run_campaign(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
    );
    (world, origin, campaign)
}

#[test]
fn topology_generation_is_pinned() {
    let world = generate(&TopologyConfig::small(0xD00D));
    assert_eq!(world.topology.num_ases(), 119);
    // Link count is sensitive to every RNG draw in the generator.
    let links = world.topology.num_links();
    let golden = golden_usize("TOPOLOGY_LINKS", links);
    assert_eq!(links, golden);
}

#[test]
fn campaign_clustering_is_pinned() {
    let (_, _, campaign) = campaign();
    let clusters = campaign.clustering.num_clusters();
    let golden = golden_usize("CAMPAIGN_CLUSTERS", clusters);
    assert_eq!(clusters, golden);
    // Mean size is determined by the two pinned numbers above.
    let mean = campaign.clustering.mean_size();
    assert!((mean - campaign.tracked.len() as f64 / clusters as f64).abs() < 1e-12);
}

#[test]
fn repeated_runs_are_bit_identical() {
    let (_, _, a) = campaign();
    let (_, _, b) = campaign();
    assert_eq!(a.catchments, b.catchments);
    assert_eq!(a.tracked, b.tracked);
    assert_eq!(a.clustering.num_clusters(), b.clustering.num_clusters());
}

/// The parallel executor chunks the schedule by thread count, and each
/// worker warm-starts and reorders its own chunk — none of which may leak
/// into the results. 1, 2, and 8 threads must agree bit-for-bit with each
/// other and with the sequential runner.
#[test]
fn parallel_campaign_is_thread_count_invariant() {
    let world = generate(&TopologyConfig::small(0xD00D));
    let origin = OriginAs::peering_style(&world, 4);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 2,
            max_poison_configs: Some(10),
        },
    );
    let (_, _, sequential) = campaign();
    for threads in [1, 2, 8] {
        let par = run_campaign_parallel(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            200,
            threads,
        );
        assert_eq!(par.catchments, sequential.catchments, "{threads} threads");
        assert_eq!(par.tracked, sequential.tracked, "{threads} threads");
        assert_eq!(
            par.clustering.clusters(),
            sequential.clustering.clusters(),
            "{threads} threads"
        );
        assert_eq!(par.records, sequential.records, "{threads} threads");
    }
}

/// First run records the value; later assertions compare against the
/// table below. Keeping the table inline (not on disk) means a change is
/// a loud compile-adjacent diff, not a stale file.
fn golden_usize(key: &str, observed: usize) -> usize {
    match key {
        // Recorded from the first run of this test suite; update ONLY for
        // deliberate algorithm changes. Regenerated when the workspace
        // moved to the vendored in-tree RNG (different ChaCha8 word
        // stream than upstream rand_chacha, same determinism guarantee).
        "TOPOLOGY_LINKS" => 249,
        "CAMPAIGN_CLUSTERS" => 47,
        _ => observed,
    }
}
