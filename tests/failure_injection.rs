//! Failure-injection integration tests: the stack must stay correct (and
//! degrade gracefully) under every deviation the paper identifies —
//! poison-immune ASes, tier-1 filtering, policy violators, and heavy
//! measurement noise.

use trackdown_suite::bgp::Catchments;
use trackdown_suite::measure::{
    IpToAsConfig, MeasurementConfig, MeasurementPlane, TracerouteConfig, VantageConfig,
};
use trackdown_suite::prelude::*;

fn engine_cfg(violators: f64, immune: f64, tier1_filter: bool) -> EngineConfig {
    EngineConfig {
        policy: PolicyConfig {
            seed: 99,
            violator_fraction: violators,
            no_loop_prevention_fraction: immune,
            tier1_poison_filtering: tier1_filter,
            extensions: Default::default(),
        },
        ..EngineConfig::default()
    }
}

#[test]
fn poison_immune_ases_keep_their_routes() {
    let world = generate(&TopologyConfig::small(40));
    let origin = OriginAs::peering_style(&world, 4);
    let normal = BgpEngine::new(&world.topology, &engine_cfg(0.0, 0.0, false));
    let immune = BgpEngine::new(&world.topology, &engine_cfg(0.0, 1.0, false));
    let targets = trackdown_suite::core::generator::poison_targets(&world.topology, &origin);
    // Across all targets, poisoning must move at least one AS in the
    // normal world; in the fully-immune world the *poisoned AS itself*
    // never loses its route.
    let baseline: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
    let mut any_moved = false;
    for t in targets.iter().take(10) {
        let anns: Vec<LinkAnnouncement> = origin
            .link_ids()
            .map(|l| {
                if l == t.via {
                    LinkAnnouncement::poisoned(l, vec![t.target])
                } else {
                    LinkAnnouncement::plain(l)
                }
            })
            .collect();
        let base = normal.propagate_config(&origin, &baseline, 200).unwrap();
        let poisoned = normal
            .propagate_config_detailed(&origin, &anns, 200, SnapshotDetail::Full)
            .unwrap();
        let ti = world.topology.index_of(t.target).unwrap();
        // In the normal world the poisoned AS must not use a route whose
        // path carries the poison (loop prevention dropped it).
        if let Some(r) = &poisoned.best[ti.us()] {
            assert!(
                !poisoned
                    .path_of(r)
                    .poisons_of(origin.asn)
                    .contains(&t.target),
                "poisoned AS accepted its own poison"
            );
        }
        if Catchments::from_control_plane(&base)
            .divergence(&Catchments::from_control_plane(&poisoned))
            > 0.0
        {
            any_moved = true;
        }
        // Immune world: the poisoned AS keeps a route either way.
        let immune_out = immune.propagate_config(&origin, &anns, 200).unwrap();
        assert!(
            immune_out.best[ti.us()].is_some(),
            "immune AS lost its route"
        );
    }
    assert!(any_moved, "poisoning never changed any catchment");
}

#[test]
fn tier1_filtering_limits_poison_spread() {
    let world = generate(&TopologyConfig::small(41));
    let origin = OriginAs::peering_style(&world, 4);
    let filtered = BgpEngine::new(&world.topology, &engine_cfg(0.0, 0.0, true));
    // Poison a tier-1 AS: with route-leak filtering, other tier-1s drop
    // customer announcements carrying it, but the prefix must remain
    // reachable via unpoisoned links.
    let cones = ConeInfo::compute(&world.topology);
    let t1 = cones.tier1s().next().expect("tier-1 exists");
    let t1_asn = world.topology.asn_of(t1);
    let anns: Vec<LinkAnnouncement> = origin
        .link_ids()
        .map(|l| {
            if l == LinkId(0) {
                LinkAnnouncement::poisoned(l, vec![t1_asn])
            } else {
                LinkAnnouncement::plain(l)
            }
        })
        .collect();
    let out = filtered.propagate_config(&origin, &anns, 200).unwrap();
    assert!(out.converged);
    assert!(
        out.reachable_count() > world.topology.num_ases() / 2,
        "poisoning a tier-1 wiped out reachability"
    );
}

#[test]
fn violator_heavy_worlds_still_converge_and_localize() {
    let world = generate(&TopologyConfig::small(42));
    let origin = OriginAs::peering_style(&world, 4);
    let engine = BgpEngine::new(&world.topology, &engine_cfg(0.5, 0.05, true));
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 2,
            max_poison_configs: Some(10),
        },
    );
    let campaign = run_campaign(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
    );
    let non_converged = campaign.records.iter().filter(|r| !r.converged).count();
    assert_eq!(
        non_converged, 0,
        "static violator preferences should still quiesce"
    );
    // Localization still works for a planted source.
    let attacker = campaign.tracked[7 % campaign.tracked.len()];
    let mut volume = vec![0u64; world.topology.num_ases()];
    volume[attacker.us()] = 1;
    let vols = link_volume_matrix(&campaign, &volume);
    let suspects = rank_suspects(&campaign, &vols);
    assert!(suspects.iter().any(|s| s.members.contains(&attacker)));
}

#[test]
fn heavy_measurement_noise_degrades_gracefully() {
    let world = generate(&TopologyConfig::small(43));
    let origin = OriginAs::peering_style(&world, 4);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let cones = ConeInfo::compute(&world.topology);
    let noisy = MeasurementConfig {
        vantage: VantageConfig {
            seed: 3,
            bgp_feed_fraction: 0.05,
            probe_fraction: 0.3,
        },
        ip_to_as: IpToAsConfig {
            seed: 4,
            dirty_as_fraction: 0.3,
            mismap_prob: 0.5,
            unmapped_prob: 0.1,
        },
        traceroute: TracerouteConfig {
            seed: 5,
            hop_unresponsive_prob: 0.3,
            rounds: 3,
            ixp_hop_prob: 0.4,
        },
        probe_budget: Some(30),
    };
    let plane = MeasurementPlane::new(&world.topology, &cones, &noisy);
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 1,
            max_poison_configs: Some(5),
        },
    );
    let campaign = run_campaign(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::Measured,
        Some(&plane),
        200,
    );
    // The pipeline must not crash, must track *something*, and clusters
    // must still partition the tracked set.
    assert!(!campaign.tracked.is_empty());
    let total: usize = campaign.clustering.sizes().iter().sum();
    assert_eq!(total, campaign.tracked.len());
    let stats = campaign.imputation.unwrap();
    assert!(stats.analysis_sources > 0);
}

#[test]
fn withdrawing_all_links_from_a_region_leaves_unreachable_sources() {
    // When announcements shrink to one link, reachability may drop for
    // ASes behind filtering tier-1s; campaign bookkeeping must treat them
    // as unobserved rather than panicking.
    let world = generate(&TopologyConfig::small(44));
    let origin = OriginAs::peering_style(&world, 4);
    let engine = BgpEngine::new(&world.topology, &engine_cfg(0.0, 0.0, true));
    let single = vec![LinkAnnouncement::plain(LinkId(2))];
    let out = engine.propagate_config(&origin, &single, 200).unwrap();
    let cat = Catchments::from_control_plane(&out);
    // Everything assigned is on the single announced link.
    assert_eq!(cat.active_links(), vec![LinkId(2)]);
    // Unassigned ASes (if any) are consistently reported.
    assert_eq!(
        cat.assigned_count() + cat.unassigned_ases().count(),
        world.topology.num_ases()
    );
}
