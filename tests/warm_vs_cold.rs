//! Differential suite: the warm-start epoch-reuse executor must be
//! indistinguishable — catchments, tracked set, clustering, per-config
//! records — from the cold-start oracle that propagates every
//! configuration from empty RIBs.
//!
//! On Gao-Rexford-conformant engines fixpoints are unique, so any
//! divergence is an executor bug (stale session state, memo-key
//! collision, reorder leakage). On engines with policy violators stable
//! states are history-dependent (BGP wedgies) and the session must
//! detect that and cold-start internally — these tests exercise both
//! regimes, and are the proof obligation for the equivalence claim.

use proptest::prelude::*;
use trackdown_suite::core::localize::{
    run_campaign_parallel_mode, run_campaign_recorded, run_campaign_sharded_mode,
};
use trackdown_suite::obs::{render_manifest, CampaignRecorder, RunInfo};
use trackdown_suite::prelude::*;

/// Engine config with the violator knob explicit: `clean` engines have
/// unique fixpoints (true epoch reuse); default engines keep the 8%
/// violator population and exercise the session's cold-start guard.
fn engine_config(clean: bool) -> EngineConfig {
    if clean {
        EngineConfig {
            policy: PolicyConfig {
                violator_fraction: 0.0,
                ..PolicyConfig::default()
            },
            ..EngineConfig::default()
        }
    } else {
        EngineConfig::default()
    }
}

/// Build a scenario from raw generator knobs: a small synthetic Internet,
/// a multi-PoP origin, and a (possibly truncated) three-phase schedule.
fn scenario(
    seed: u64,
    pops: usize,
    max_removals: usize,
    max_poison: usize,
) -> (GeneratedTopology, OriginAs, Vec<AnnouncementConfig>) {
    let world = generate(&TopologyConfig::small(seed));
    let origin = OriginAs::peering_style(&world, pops);
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals,
            max_poison_configs: Some(max_poison),
        },
    );
    (world, origin, schedule)
}

/// The full equality obligation between two campaigns. Stats are exempt
/// by design (they describe *how* the executor ran, not what it found).
macro_rules! assert_campaigns_identical {
    ($warm:expr, $cold:expr) => {
        prop_assert_eq!(&$warm.configs, &$cold.configs);
        prop_assert_eq!(&$warm.catchments, &$cold.catchments);
        prop_assert_eq!(&$warm.tracked, &$cold.tracked);
        prop_assert_eq!($warm.clustering.clusters(), $cold.clustering.clusters());
        prop_assert_eq!(&$warm.records, &$cold.records);
        prop_assert_eq!($warm.imputation, $cold.imputation);
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Sequential warm executor vs the cold oracle, both ground-truth
    // catchment sources.
    #[test]
    fn warm_campaign_equals_cold_oracle(
        seed in 0u64..500,
        pops in 3usize..6,
        max_removals in 0usize..3,
        max_poison in 4usize..12,
        data_plane in 0u8..2,
        clean in 0u8..2,
    ) {
        let (world, origin, schedule) = scenario(seed, pops, max_removals, max_poison);
        let engine = BgpEngine::new(&world.topology, &engine_config(clean == 1));
        let source = if data_plane == 1 {
            CatchmentSource::DataPlane
        } else {
            CatchmentSource::ControlPlane
        };
        let warm = run_campaign_mode(
            &engine, &origin, &schedule, source, None, 200, CampaignMode::Warm);
        let cold = run_campaign_mode(
            &engine, &origin, &schedule, source, None, 200, CampaignMode::Cold);
        assert_campaigns_identical!(warm, cold);
        // Executor accounting: every configuration is either propagated
        // or served from the memo, and the cold oracle never memoizes.
        prop_assert_eq!(
            warm.stats.propagations + warm.stats.memo_hits,
            schedule.len()
        );
        prop_assert_eq!(cold.stats.propagations, schedule.len());
        prop_assert_eq!(cold.stats.memo_hits, 0);
    }

    // Parallel warm workers (chunked sessions, per-chunk reordering and
    // memoization) vs the sequential cold oracle.
    #[test]
    fn parallel_warm_equals_sequential_cold(
        seed in 0u64..500,
        max_poison in 4usize..12,
        threads in 1usize..5,
        clean in 0u8..2,
    ) {
        let (world, origin, schedule) = scenario(seed, 4, 1, max_poison);
        let engine = BgpEngine::new(&world.topology, &engine_config(clean == 1));
        let warm = run_campaign_parallel_mode(
            &engine, &origin, &schedule, CatchmentSource::ControlPlane,
            200, threads, CampaignMode::Warm);
        let cold = run_campaign_mode(
            &engine, &origin, &schedule, CatchmentSource::ControlPlane,
            None, 200, CampaignMode::Cold);
        assert_campaigns_identical!(warm, cold);
    }

    // Measured campaigns: the memo is disabled (the observation plane
    // salts its noise per schedule index) but the warm session still
    // drives the engine — imputation and the analysis set must match the
    // cold oracle exactly, noise included.
    #[test]
    fn measured_warm_equals_measured_cold(
        seed in 0u64..200,
        max_poison in 4usize..8,
        clean in 0u8..2,
    ) {
        let (world, origin, schedule) = scenario(seed, 4, 1, max_poison);
        let engine = BgpEngine::new(&world.topology, &engine_config(clean == 1));
        let cones = ConeInfo::compute(&world.topology);
        let plane = MeasurementPlane::new(&world.topology, &cones, &MeasurementConfig::default());
        let warm = run_campaign_mode(
            &engine, &origin, &schedule, CatchmentSource::Measured,
            Some(&plane), 200, CampaignMode::Warm);
        let cold = run_campaign_mode(
            &engine, &origin, &schedule, CatchmentSource::Measured,
            Some(&plane), 200, CampaignMode::Cold);
        assert_campaigns_identical!(warm, cold);
        prop_assert_eq!(warm.stats.memo_hits, 0);
        prop_assert_eq!(warm.stats.propagations, schedule.len());
    }

    // The sharded batch-catchment executor vs the unsharded oracle, for
    // every Warm/Cold × shard-count combination — all the way through
    // suspect ranking, so a shard-merge bug that reshuffled catchments
    // could not hide behind equal cluster *counts*.
    #[test]
    fn sharded_equals_unsharded_for_all_modes_and_shard_counts(
        seed in 0u64..300,
        max_poison in 4usize..10,
        threads in 1usize..4,
        data_plane in 0u8..2,
        clean in 0u8..2,
    ) {
        let (world, origin, schedule) = scenario(seed, 4, 1, max_poison);
        let engine = BgpEngine::new(&world.topology, &engine_config(clean == 1));
        let source = if data_plane == 1 {
            CatchmentSource::DataPlane
        } else {
            CatchmentSource::ControlPlane
        };
        let volume: Vec<u64> = (0..world.topology.num_ases() as u64)
            .map(|i| 1 + i % 7)
            .collect();
        for mode in [CampaignMode::Warm, CampaignMode::Delta, CampaignMode::Cold] {
            let oracle = run_campaign_mode(
                &engine, &origin, &schedule, source, None, 200, mode);
            let oracle_vols = link_volume_matrix(&oracle, &volume);
            let oracle_rank = rank_suspects(&oracle, &oracle_vols);
            for shards in [1usize, 2, 8] {
                let sharded = run_campaign_sharded_mode(
                    &engine, &origin, &schedule, source,
                    200, threads, shards, mode);
                assert_campaigns_identical!(sharded, oracle);
                // Bitset rows vs the dense reference representation: every
                // campaign catchment must survive a dense round-trip, so the
                // packed u64 blocks and the Vec<Option<LinkId>> assignment
                // are the same function — per config, against the oracle.
                for (c, o) in sharded.catchments.iter().zip(oracle.catchments.iter()) {
                    let dense = c.dense();
                    prop_assert_eq!(&dense, &o.dense());
                    prop_assert_eq!(&Catchments::from_dense(&dense), c);
                }
                let vols = link_volume_matrix(&sharded, &volume);
                prop_assert_eq!(rank_suspects(&sharded, &vols), oracle_rank.clone());
                prop_assert_eq!(
                    sharded.stats.shards,
                    ShardPlan::new(world.topology.num_ases(), shards).num_shards()
                );
                prop_assert_eq!(sharded.stats.mode, mode);
            }
        }
    }
}

// Policy extensions make the import filter stricter, never
// history-dependent: with any extension deployed — at 0% (the inert
// configuration), partial, or universal coverage — the warm executor's
// epoch reuse must remain indistinguishable from the cold oracle, all
// the way through suspect ranking.
#[test]
fn extensions_on_warm_equals_cold() {
    let (world, origin, schedule) = scenario(31, 4, 1, 8);
    let volume: Vec<u64> = (0..world.topology.num_ases() as u64)
        .map(|i| 1 + i % 5)
        .collect();
    for ext in PolicyExtension::ALL {
        for fraction in [0.0, 0.3, 1.0] {
            let mut policy = PolicyConfig {
                violator_fraction: 0.0,
                ..PolicyConfig::default()
            };
            policy.extensions.deployments = vec![ExtensionDeployment {
                extension: ext,
                fraction,
                bias: DeploymentBias::Core,
            }];
            let cfg = EngineConfig {
                policy,
                ..EngineConfig::default()
            };
            let engine = BgpEngine::new(&world.topology, &cfg);
            let warm = run_campaign_mode(
                &engine,
                &origin,
                &schedule,
                CatchmentSource::ControlPlane,
                None,
                200,
                CampaignMode::Warm,
            );
            let cold = run_campaign_mode(
                &engine,
                &origin,
                &schedule,
                CatchmentSource::ControlPlane,
                None,
                200,
                CampaignMode::Cold,
            );
            assert_eq!(
                &warm.catchments, &cold.catchments,
                "{ext} at {fraction}: warm catchments diverged from cold"
            );
            assert_eq!(&warm.tracked, &cold.tracked);
            assert_eq!(warm.clustering.clusters(), cold.clustering.clusters());
            assert_eq!(&warm.records, &cold.records);
            let wv = link_volume_matrix(&warm, &volume);
            let cv = link_volume_matrix(&cold, &volume);
            assert_eq!(
                rank_suspects(&warm, &wv),
                rank_suspects(&cold, &cv),
                "{ext} at {fraction}: suspect ranking diverged"
            );
        }
    }
}

// Degenerate epoch: re-deploying the identical announcement must cost
// the delta engine zero propagation work — no seeds, no events, no
// disturbance — while the campaign-level manifest stays byte-identical
// and deterministic.
#[test]
fn identical_redeploy_is_a_zero_work_epoch() {
    let (world, origin, schedule) = scenario(23, 4, 1, 8);
    let engine = BgpEngine::new(&world.topology, &engine_config(true));

    // Engine level: the second (identical) deployment diffs to an empty
    // seed set and never enters the propagation loop.
    let mut session = engine.session();
    let anns = schedule[0].to_link_announcements();
    let first = session
        .deploy_config_delta(&origin, &anns, 200)
        .expect("valid configuration");
    assert!(first.converged);
    let redeploy = session
        .deploy_config_delta(&origin, &anns, 200)
        .expect("valid configuration");
    assert_eq!(redeploy.events, 0, "identical redeploy must not propagate");
    assert_eq!(redeploy.routes_disturbed, 0);
    assert_eq!(
        Catchments::from_control_plane(&redeploy),
        Catchments::from_control_plane(&first)
    );

    // Campaign level: a schedule ending in a duplicated configuration
    // emits a deterministic manifest that is byte-identical across runs,
    // with the degenerate epoch recorded at zero cost.
    let mut doubled = schedule.clone();
    doubled.push(schedule[0].clone());
    let manifest_of = || {
        let recorder = CampaignRecorder::new(true);
        let campaign = run_campaign_recorded(
            &engine,
            &origin,
            &doubled,
            CatchmentSource::ControlPlane,
            None,
            200,
            CampaignMode::Delta,
            Some(&recorder),
        );
        let info = RunInfo {
            name: "degenerate".into(),
            seed: 23,
            policy_seed: 0,
            scale: "small".into(),
            mode: "delta".into(),
            threads: campaign.stats.threads,
            shards: campaign.stats.shards,
            trace: "off".into(),
            schedule_len: campaign.configs.len(),
            deterministic: true,
        };
        let records = recorder.take_records();
        let degenerate = records.last().expect("duplicated epoch recorded");
        assert_eq!(degenerate.events, 0);
        assert_eq!(degenerate.routes_disturbed, 0);
        render_manifest(&info, &records, None)
    };
    assert_eq!(manifest_of(), manifest_of(), "manifest must be byte-stable");
}

// The default entry points are the warm executor; pin that so a future
// refactor can't silently flip the default back to cold.
#[test]
fn default_entry_points_run_warm() {
    let (world, origin, schedule) = scenario(11, 4, 1, 6);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let seq = run_campaign(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
    );
    assert_eq!(seq.stats.mode, CampaignMode::Warm);
    assert_eq!(seq.stats.propagations + seq.stats.memo_hits, schedule.len());
    let par = run_campaign_parallel(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        200,
        2,
    );
    assert_eq!(par.stats.mode, CampaignMode::Warm);
    assert_eq!(par.stats.threads, 2);
    assert_eq!(seq.catchments, par.catchments);
}
