//! Property-based checks of the paper's §III claims about what each
//! announcement technique can and cannot do:
//!
//! * **Location variation** (§III-A-a): a schedule with redundancy `r`
//!   uncovers at least `r + 1` distinct ingress routes for every source
//!   that has that many policy-compliant paths to the origin.
//! * **Prepending** (§III-A-b): lengthening the AS-path at one link moves
//!   only sources whose best and second-best routes were LocalPref-tied —
//!   LocalPref dominates path length in the decision process.
//! * **Poisoning** (§III-A-c): poisoning AS `u` is routing-equivalent to
//!   deleting `u`'s links from the topology — the announcement-level knob
//!   simulates a graph edit the origin cannot perform.
//!
//! All properties are stated for Gao-Rexford-conformant engines: policy
//! violators, disabled loop prevention, and tier-1 poison filtering are
//! exactly the real-world deviations the paper identifies as breaking
//! these guarantees (§V-C), so the clean engine is where they must hold.

use proptest::prelude::*;
use std::collections::BTreeSet;
use trackdown_suite::core::generator::{location_phase, poison_targets};
use trackdown_suite::prelude::*;
use trackdown_suite::topology::{LinkKind, TopologyBuilder};

/// Engine with every policy deviation disabled: unique fixpoints, strict
/// Gao-Rexford preferences, loop prevention everywhere, no tier-1
/// route-leak filtering.
fn conformant() -> EngineConfig {
    EngineConfig {
        policy: PolicyConfig {
            violator_fraction: 0.0,
            no_loop_prevention_fraction: 0.0,
            tier1_poison_filtering: false,
            ..PolicyConfig::default()
        },
        ..EngineConfig::default()
    }
}

/// Rebuild the topology with every link incident to `victim` removed,
/// keeping all ASes (and therefore all `AsIndex` assignments) intact.
fn sever_as(topo: &Topology, victim: Asn) -> Topology {
    let mut b = TopologyBuilder::with_capacity(topo.num_ases());
    for &a in topo.asns() {
        b.add_as(a).expect("unique ASNs");
    }
    for link in topo.links() {
        if link.a == victim || link.b == victim {
            continue;
        }
        match link.kind {
            LinkKind::ProviderCustomer => b.add_provider_customer(link.a, link.b),
            LinkKind::PeerPeer => b.add_peering(link.a, link.b),
        }
        .expect("links valid in source topology");
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // §III-A-a: the location schedule with up to `r` removals observes,
    // for every source, at least min(r + 1, usable) distinct ingress
    // links, where `usable` counts the links whose singleton announcement
    // reaches the source at all — and never observes an unusable ingress.
    #[test]
    fn location_schedule_uncovers_redundant_ingresses(
        seed in 0u64..300,
        pops in 3usize..6,
        r in 1usize..4,
    ) {
        let world = generate(&TopologyConfig::small(seed));
        let origin = OriginAs::peering_style(&world, pops);
        let engine = BgpEngine::new(&world.topology, &conformant());
        let n = world.topology.num_ases();

        // usable[s]: links whose lone announcement gives s a route — the
        // source's policy-compliant path diversity toward the origin.
        let mut usable: Vec<BTreeSet<LinkId>> = vec![BTreeSet::new(); n];
        for l in origin.link_ids() {
            let out = engine
                .propagate_config(&origin, &[LinkAnnouncement::plain(l)], 200)
                .unwrap();
            for i in world.topology.indices() {
                if out.catchment(i).is_some() {
                    usable[i.us()].insert(l);
                }
            }
        }

        // observed[s]: distinct ingresses across the location schedule.
        let mut observed: Vec<BTreeSet<LinkId>> = vec![BTreeSet::new(); n];
        for cfg in location_phase(origin.num_links(), r) {
            let out = engine
                .propagate_config(&origin, &cfg.to_link_announcements(), 200)
                .unwrap();
            for i in world.topology.indices() {
                if let Some(l) = out.catchment(i) {
                    observed[i.us()].insert(l);
                }
            }
        }

        for i in 0..n {
            for l in &observed[i] {
                prop_assert!(
                    usable[i].contains(l),
                    "AS {i} entered via {l} which cannot reach it alone"
                );
            }
            let want = (r + 1).min(usable[i].len());
            prop_assert!(
                observed[i].len() >= want,
                "AS {i}: {} distinct ingresses observed, redundancy {r} \
                 promises {want} (usable: {})",
                observed[i].len(),
                usable[i].len()
            );
        }
    }

    // §III-A-c: announcing ⟨L; ∅; {u}⟩ — every link, poisoning u — yields
    // the same catchments as announcing on the topology with every
    // u-incident link deleted. Poisoned paths carry the `origin u origin`
    // sandwich (length 3), so the severed-topology run announces with
    // prepend_times = 2 to present the same path lengths to every other
    // AS; BGP's decision process never reads path *contents* beyond loop
    // prevention, which only u itself triggers.
    #[test]
    fn poisoning_equals_severing_the_victims_links(
        seed in 0u64..300,
        pops in 3usize..6,
        pick in 0usize..64,
    ) {
        let world = generate(&TopologyConfig::small(seed));
        let mut origin = OriginAs::peering_style(&world, pops);
        origin.prepend_times = 2; // match the poison sandwich length
        let targets = poison_targets(&world.topology, &origin);
        if targets.is_empty() {
            return; // origin footprint with no poisonable neighbors
        }
        let victim = targets[pick % targets.len()].target;
        let u = world.topology.index_of(victim).unwrap();
        let cfg = conformant();

        let engine = BgpEngine::new(&world.topology, &cfg);
        let poisoned_anns: Vec<LinkAnnouncement> = origin
            .link_ids()
            .map(|l| LinkAnnouncement::poisoned(l, vec![victim]))
            .collect();
        let poisoned = engine
            .propagate_config(&origin, &poisoned_anns, 200)
            .unwrap();

        let severed_topo = sever_as(&world.topology, victim);
        prop_assert_eq!(severed_topo.num_ases(), world.topology.num_ases());
        prop_assert_eq!(severed_topo.degree(u), 0);
        let severed_engine = BgpEngine::new(&severed_topo, &cfg);
        let prepended_anns: Vec<LinkAnnouncement> =
            origin.link_ids().map(LinkAnnouncement::prepended).collect();
        let severed = severed_engine
            .propagate_config(&origin, &prepended_anns, 200)
            .unwrap();

        // The victim is unreachable both ways; everyone else is routed
        // identically.
        prop_assert_eq!(poisoned.catchment(u), None);
        prop_assert_eq!(severed.catchment(u), None);
        for i in world.topology.indices() {
            prop_assert_eq!(
                poisoned.catchment(i),
                severed.catchment(i),
                "catchment diverged at AS index {}",
                i.0
            );
        }
        prop_assert_eq!(poisoned.reachable_count(), severed.reachable_count());
    }

    // §III-A-b: prepending at link l preserves every AS's LocalPref band
    // and relationship class, and an AS's ingress flips only when its
    // top-LocalPref candidate band held at least two routes — or when the
    // flip cascaded from the upstream neighbor it routes through (the
    // tie was decided there).
    #[test]
    fn prepending_flips_only_localpref_tied_sources(
        seed in 0u64..300,
        pops in 3usize..6,
        pick in 0usize..8,
    ) {
        let world = generate(&TopologyConfig::small(seed));
        let origin = OriginAs::peering_style(&world, pops);
        let engine = BgpEngine::new(&world.topology, &conformant());
        let l = LinkId((pick % origin.num_links()) as u8);

        let base_anns: Vec<LinkAnnouncement> =
            origin.link_ids().map(LinkAnnouncement::plain).collect();
        let prep_anns: Vec<LinkAnnouncement> = origin
            .link_ids()
            .map(|k| {
                if k == l {
                    LinkAnnouncement::prepended(k)
                } else {
                    LinkAnnouncement::plain(k)
                }
            })
            .collect();
        let base = engine
            .propagate_config_detailed(&origin, &base_anns, 200, SnapshotDetail::Full)
            .unwrap();
        let prep = engine.propagate_config(&origin, &prep_anns, 200).unwrap();

        let changed: Vec<bool> = world
            .topology
            .indices()
            .map(|i| base.catchment(i) != prep.catchment(i))
            .collect();
        for i in world.topology.indices() {
            let (b, p) = match (&base.best[i.us()], &prep.best[i.us()]) {
                (Some(b), Some(p)) => (b, p),
                (b, p) => {
                    prop_assert_eq!(
                        b.is_some(),
                        p.is_some(),
                        "prepending changed reachability at AS index {}",
                        i.0
                    );
                    continue;
                }
            };
            // Path length never outranks LocalPref, so the band and the
            // relationship class an AS routes through are invariant.
            prop_assert_eq!(
                b.local_pref, p.local_pref,
                "LocalPref changed at AS index {}", i.0
            );
            prop_assert_eq!(
                b.learned_from, p.learned_from,
                "relationship class changed at AS index {}", i.0
            );
            if changed[i.us()] {
                let band = base.candidates()[i.us()]
                    .iter()
                    .filter(|c| c.local_pref == b.local_pref)
                    .count();
                let cascaded = b.from_neighbor.is_some_and(|nb| changed[nb.us()]);
                prop_assert!(
                    band >= 2 || cascaded,
                    "AS index {} flipped ingress with a unique top-LocalPref \
                     candidate and an unmoved upstream ({} candidates in band)",
                    i.0,
                    band
                );
            }
        }
    }

    // Frontier soundness of the delta engine: every AS whose best route
    // differs between consecutive epochs' fixpoints must be inside the
    // delta propagation's visited set — no silently-skipped AS. The
    // per-epoch change log is checked directly against a cold oracle of
    // both fixpoints, and the `bgp.delta.*` frontier counters must agree
    // (this test is the binary's only delta-counter consumer, so the
    // process-global deltas are attributable).
    #[test]
    fn delta_frontier_covers_every_route_difference(
        seed in 0u64..300,
        pops in 3usize..6,
        max_poison in 4usize..10,
    ) {
        let world = generate(&TopologyConfig::small(seed));
        let origin = OriginAs::peering_style(&world, pops);
        let schedule = full_schedule(
            &world.topology,
            &origin,
            &GeneratorParams { max_removals: 1, max_poison_configs: Some(max_poison) },
        );
        let engine = BgpEngine::new(&world.topology, &conformant());
        let registry = trackdown_suite::obs::global();
        let mut session = engine.session();
        let mut prev_cold: Option<RoutingOutcome> = None;
        for cfg in schedule.iter().take(12) {
            let anns = cfg.to_link_announcements();
            let visited_before = registry.counter("bgp.delta.visited").get();
            let disturbed_before = registry.counter("bgp.delta.disturbed").get();
            let out = session
                .deploy_config_delta(&origin, &anns, 200)
                .expect("valid configuration");
            let visited = registry.counter("bgp.delta.visited").get() - visited_before;
            let disturbed = registry.counter("bgp.delta.disturbed").get() - disturbed_before;
            let cold = engine.propagate_config(&origin, &anns, 200).unwrap();
            if let Some(prev) = &prev_cold {
                // Oracle frontier: ASes whose best route moved between the
                // two fixpoints, computed from cold runs on both sides.
                let moved: Vec<AsIndex> = world
                    .topology
                    .indices()
                    .filter(|&i| prev.catchment(i) != cold.catchment(i))
                    .collect();
                let logged: BTreeSet<u32> =
                    out.changes.iter().map(|ch| ch.at.0).collect();
                for i in &moved {
                    prop_assert!(
                        logged.contains(&i.0),
                        "AS index {} changed best route but was never \
                         visited by the delta engine",
                        i.0
                    );
                }
                // Counter consistency: the published net disturbance
                // covers at least the ingress-moved oracle frontier (it
                // also counts same-ingress path changes), matches the
                // outcome field, and the engine visited at least that
                // many ASes to find it.
                prop_assert_eq!(disturbed as usize, out.routes_disturbed);
                prop_assert!(
                    out.routes_disturbed >= moved.len(),
                    "disturbed {} misses part of the {}-AS oracle frontier",
                    out.routes_disturbed,
                    moved.len()
                );
                prop_assert!(
                    visited as usize >= out.routes_disturbed,
                    "visited {} < disturbed {}",
                    visited,
                    out.routes_disturbed
                );
            }
            prev_cold = Some(cold);
        }
    }
}

/// The literal §III-A-c statement: for a victim `u` whose only link is to
/// provider `n`, the poisoning configuration ⟨L; ∅; {u}⟩ routes exactly
/// like the unpoisoned topology with the single `n–u` edge deleted.
#[test]
fn degree_one_poisoning_equals_single_edge_deletion() {
    let mut tested = 0;
    for seed in 0..60u64 {
        let world = generate(&TopologyConfig::small(seed));
        let mut origin = OriginAs::peering_style(&world, 4);
        origin.prepend_times = 2;
        let Some(victim) = poison_targets(&world.topology, &origin)
            .iter()
            .map(|t| t.target)
            .find(|&a| {
                let i = world.topology.index_of(a).unwrap();
                world.topology.degree(i) == 1
            })
        else {
            continue;
        };
        let u = world.topology.index_of(victim).unwrap();
        let cfg = conformant();

        let engine = BgpEngine::new(&world.topology, &cfg);
        let poisoned_anns: Vec<LinkAnnouncement> = origin
            .link_ids()
            .map(|l| LinkAnnouncement::poisoned(l, vec![victim]))
            .collect();
        let poisoned = engine
            .propagate_config(&origin, &poisoned_anns, 200)
            .unwrap();

        // Deleting u's single edge is the same graph edit as severing it.
        let edited = sever_as(&world.topology, victim);
        assert_eq!(edited.num_links(), world.topology.num_links() - 1);
        let edited_engine = BgpEngine::new(&edited, &cfg);
        let prepended_anns: Vec<LinkAnnouncement> =
            origin.link_ids().map(LinkAnnouncement::prepended).collect();
        let deleted = edited_engine
            .propagate_config(&origin, &prepended_anns, 200)
            .unwrap();

        assert_eq!(poisoned.catchment(u), None);
        for i in world.topology.indices() {
            assert_eq!(
                poisoned.catchment(i),
                deleted.catchment(i),
                "seed {seed}: catchment diverged at AS index {}",
                i.0
            );
        }
        tested += 1;
    }
    assert!(
        tested >= 3,
        "too few degree-1 poison targets found across seeds ({tested})"
    );
}
