//! Differential suite for the interned-path propagation core: the
//! arena-backed engine must produce *identical* results — best routes,
//! change logs, control- and data-plane catchments — to an independent
//! reference propagator that stores materialized `Vec<Asn>` paths on every
//! route, exactly as the engine did before the arena refactor.
//!
//! The reference implementation below deliberately re-derives the run
//! loop from the engine's public policy API (`accepts`, `local_pref`,
//! `may_export`, `tiebreak_key`) instead of sharing any propagation code,
//! so a bug in the arena plumbing (wrong interning order, dangling ids,
//! lossy community bits, stale length caches) cannot cancel out.

use proptest::prelude::*;
use std::collections::VecDeque;
use trackdown_suite::bgp::{
    Catchments, Community, CommunityBits, CommunitySet, Injection, SnapshotDetail,
};
use trackdown_suite::core::localize::run_campaign_parallel_mode;
use trackdown_suite::prelude::*;
use trackdown_suite::topology::NeighborKind;

/// A route with its AS-path materialized inline — the pre-arena layout.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RefRoute {
    path: AsPath,
    ingress: LinkId,
    from_neighbor: Option<AsIndex>,
    local_pref: u32,
    learned_from: NeighborKind,
    communities: CommunitySet,
}

/// A best-route change as the reference propagator records it.
#[derive(Debug, Clone, PartialEq, Eq)]
struct RefChange {
    round: u32,
    at: AsIndex,
    ingress: Option<LinkId>,
    path_len: usize,
}

/// The reference cold-start fixpoint: materialized paths, same queue
/// discipline, same decision process, same event cap as the engine.
struct RefOutcome {
    best: Vec<Option<RefRoute>>,
    changes: Vec<RefChange>,
    converged: bool,
}

fn ref_better(engine: &BgpEngine<'_>, at: AsIndex, a: &RefRoute, b: &RefRoute) -> bool {
    if a.local_pref != b.local_pref {
        return a.local_pref > b.local_pref;
    }
    if a.path.len() != b.path.len() {
        return a.path.len() < b.path.len();
    }
    let ta = engine.policy().tiebreak_key(at, a.from_neighbor, a.ingress);
    let tb = engine.policy().tiebreak_key(at, b.from_neighbor, b.ingress);
    if ta != tb {
        return ta < tb;
    }
    let na = a.from_neighbor.map(|n| n.0 + 1).unwrap_or(0);
    let nb = b.from_neighbor.map(|n| n.0 + 1).unwrap_or(0);
    if na != nb {
        return na < nb;
    }
    a.ingress < b.ingress
}

fn ref_propagate(
    engine: &BgpEngine<'_>,
    injections: &[Injection],
    max_events_factor: usize,
) -> RefOutcome {
    let topo = engine.topology();
    let policy = engine.policy();
    let n = topo.num_ases();
    let mut direct: Vec<Vec<RefRoute>> = vec![Vec::new(); n];
    let mut ribs: Vec<Vec<Option<RefRoute>>> =
        topo.indices().map(|i| vec![None; topo.degree(i)]).collect();
    let mut best: Vec<Option<RefRoute>> = vec![None; n];
    let mut queue: VecDeque<AsIndex> = VecDeque::new();
    let mut in_queue = vec![false; n];
    let mut depth = vec![0u32; n];
    let mut pending_depth = vec![0u32; n];
    let mut changes: Vec<RefChange> = Vec::new();
    let mut events = 0usize;
    let mut converged = true;

    for inj in injections {
        if !policy.accepts(topo, inj.provider, None, &inj.path) {
            continue;
        }
        direct[inj.provider.us()].push(RefRoute {
            path: inj.path.clone(),
            ingress: inj.link,
            from_neighbor: None,
            local_pref: policy.local_pref(inj.provider, None, NeighborKind::Customer),
            learned_from: NeighborKind::Customer,
            communities: inj.communities.clone(),
        });
        if !in_queue[inj.provider.us()] {
            in_queue[inj.provider.us()] = true;
            queue.push_back(inj.provider);
        }
    }

    let cap = max_events_factor.saturating_mul(n.max(1));
    while let Some(i) = queue.pop_front() {
        in_queue[i.us()] = false;
        events += 1;
        if events > cap {
            converged = false;
            break;
        }
        let mut new_best: Option<&RefRoute> = None;
        for cand in direct[i.us()].iter().chain(ribs[i.us()].iter().flatten()) {
            new_best = match new_best {
                None => Some(cand),
                Some(cur) => {
                    if ref_better(engine, i, cand, cur) {
                        Some(cand)
                    } else {
                        Some(cur)
                    }
                }
            };
        }
        let new_best = new_best.cloned();
        if new_best == best[i.us()] {
            continue;
        }
        best[i.us()] = new_best.clone();
        depth[i.us()] = pending_depth[i.us()];
        changes.push(RefChange {
            round: depth[i.us()],
            at: i,
            ingress: new_best.as_ref().map(|r| r.ingress),
            path_len: new_best.as_ref().map(|r| r.path.len()).unwrap_or(0),
        });
        let own_asn = topo.asn_of(i);
        for &(j, j_kind_from_i) in topo.neighbors(i) {
            let offer = match &new_best {
                Some(r)
                    if policy.may_export(r.learned_from, j_kind_from_i)
                        && (r.from_neighbor.is_some()
                            || r.communities.allows_export_to(j_kind_from_i))
                        && r.from_neighbor != Some(j) =>
                {
                    let extra = if r.from_neighbor.is_none() {
                        r.communities.provider_prepends()
                    } else {
                        0
                    };
                    let offered = r.path.prepended_by_times(own_asn, 1 + extra);
                    if policy.accepts(topo, j, Some(i), &offered) {
                        let i_kind_from_j = j_kind_from_i.reverse();
                        Some(RefRoute {
                            path: offered,
                            ingress: r.ingress,
                            from_neighbor: Some(i),
                            local_pref: policy.local_pref(j, Some(i), i_kind_from_j),
                            learned_from: i_kind_from_j,
                            communities: CommunitySet::empty(),
                        })
                    } else {
                        None
                    }
                }
                _ => None,
            };
            let pos = topo
                .neighbors(j)
                .binary_search_by_key(&i, |(m, _)| *m)
                .expect("adjacency is symmetric");
            if ribs[j.us()][pos] != offer {
                ribs[j.us()][pos] = offer;
                pending_depth[j.us()] = pending_depth[j.us()].max(depth[i.us()] + 1);
                if !in_queue[j.us()] {
                    in_queue[j.us()] = true;
                    queue.push_back(j);
                }
            }
        }
    }
    RefOutcome {
        best,
        changes,
        converged,
    }
}

/// Assert an engine outcome (captured at `SnapshotDetail::Full`) equals
/// the reference fixpoint route for route, change for change.
fn assert_outcome_matches_reference(out: &RoutingOutcome, reference: &RefOutcome) {
    prop_assert_eq!(out.converged, reference.converged);
    prop_assert_eq!(out.best.len(), reference.best.len());
    for (i, (a, r)) in out.best.iter().zip(&reference.best).enumerate() {
        match (a, r) {
            (None, None) => {}
            (Some(a), Some(r)) => {
                prop_assert_eq!(out.path_of(a), r.path.clone(), "path differs at AS {}", i);
                prop_assert_eq!(a.path_len(), r.path.len(), "cached len differs at AS {}", i);
                prop_assert_eq!(a.ingress, r.ingress, "ingress differs at AS {}", i);
                prop_assert_eq!(
                    a.from_neighbor,
                    r.from_neighbor,
                    "from_neighbor differs at AS {}",
                    i
                );
                prop_assert_eq!(a.local_pref, r.local_pref, "local_pref differs at AS {}", i);
                prop_assert_eq!(
                    a.learned_from,
                    r.learned_from,
                    "learned_from differs at AS {}",
                    i
                );
                prop_assert_eq!(
                    a.communities,
                    CommunityBits::from_set(&r.communities),
                    "communities differ at AS {}",
                    i
                );
            }
            _ => prop_assert!(
                false,
                "best presence differs at AS {}: {:?} vs {:?}",
                i,
                a,
                r
            ),
        }
    }
    prop_assert_eq!(out.changes.len(), reference.changes.len());
    for (a, r) in out.changes.iter().zip(&reference.changes) {
        prop_assert_eq!(a.round, r.round);
        prop_assert_eq!(a.at, r.at);
        prop_assert_eq!(a.ingress, r.ingress);
        prop_assert_eq!(a.path_len, r.path_len);
    }
}

fn engine_config(seed: u64, violators: f64, immune: f64, tier1: bool) -> EngineConfig {
    EngineConfig {
        policy: PolicyConfig {
            seed,
            violator_fraction: violators,
            no_loop_prevention_fraction: immune,
            tier1_poison_filtering: tier1,
            extensions: Default::default(),
        },
        ..EngineConfig::default()
    }
}

/// Candidate poison targets: neighbors of the origin's providers, the
/// same targeting strategy the schedule generator uses.
fn poison_candidates(topo: &Topology, origin: &OriginAs) -> Vec<Asn> {
    let providers: Vec<Asn> = origin.links.iter().map(|l| l.provider).collect();
    let mut out = Vec::new();
    for link in &origin.links {
        let Some(p) = topo.index_of(link.provider) else {
            continue;
        };
        for &(nb, _) in topo.neighbors(p) {
            let asn = topo.asn_of(nb);
            if asn != origin.asn && !providers.contains(&asn) && !out.contains(&asn) {
                out.push(asn);
            }
        }
    }
    out
}

/// Build one announcement per link from the per-link knob nibble:
/// 0 = withdrawn, 1 = plain, 2 = prepended, 3 = poisoned,
/// 4 = no-export-to-peers, 5 = provider-prepend community.
fn announcements_from_knobs(
    topo: &Topology,
    origin: &OriginAs,
    knobs: &[u8],
) -> Vec<LinkAnnouncement> {
    let poisons = poison_candidates(topo, origin);
    let mut anns = Vec::new();
    for (idx, l) in origin.link_ids().enumerate() {
        match knobs[idx % knobs.len()] % 6 {
            0 => {}
            1 => anns.push(LinkAnnouncement::plain(l)),
            2 => anns.push(LinkAnnouncement {
                link: l,
                prepend: true,
                poisons: vec![],
                communities: CommunitySet::empty(),
            }),
            3 if !poisons.is_empty() => {
                let p = poisons[(idx + knobs[0] as usize) % poisons.len()];
                anns.push(LinkAnnouncement {
                    link: l,
                    prepend: false,
                    poisons: vec![p],
                    communities: CommunitySet::empty(),
                });
            }
            3 => anns.push(LinkAnnouncement::plain(l)),
            4 => anns.push(LinkAnnouncement {
                link: l,
                prepend: false,
                poisons: vec![],
                communities: CommunitySet::from_vec(vec![Community::NoExportToPeers]),
            }),
            _ => anns.push(LinkAnnouncement {
                link: l,
                prepend: false,
                poisons: vec![],
                communities: CommunitySet::from_vec(vec![Community::PrependAtProvider(
                    1 + (knobs[idx % knobs.len()] / 6) % 8,
                )]),
            }),
        }
    }
    if anns.is_empty() {
        anns.push(LinkAnnouncement::plain(LinkId(0)));
    }
    anns
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Cold-start propagation over random topologies, policies, and
    // announcement mixes (withdrawals, prepending, poisoning, action
    // communities): byte-for-byte equal to the materialized-path oracle.
    #[test]
    fn arena_propagation_matches_materialized_reference(
        topo_seed in 0u64..200,
        policy_seed in 0u64..100,
        pops in 3usize..6,
        knobs in proptest::collection::vec(0u8..48, 3..6),
        violators in 0u8..2,
        immune in 0u8..2,
        tier1 in any::<bool>(),
    ) {
        let g = generate(&TopologyConfig::small(topo_seed));
        let origin = OriginAs::peering_style(&g, pops);
        let cfg = engine_config(
            policy_seed,
            if violators == 1 { 0.15 } else { 0.0 },
            if immune == 1 { 0.1 } else { 0.0 },
            tier1,
        );
        let engine = BgpEngine::new(&g.topology, &cfg);
        let anns = announcements_from_knobs(&g.topology, &origin, &knobs);
        let inj = origin.build_injections(&g.topology, &anns).unwrap();

        let out = engine.propagate_detailed(&inj, 200, SnapshotDetail::Full);
        let reference = ref_propagate(&engine, &inj, 200);
        assert_outcome_matches_reference(&out, &reference);

        // Catchments derive from best routes, but check them end to end
        // anyway: both the control-plane tags and the forwarding walks.
        let ctrl = Catchments::from_control_plane(&out);
        for i in g.topology.indices() {
            prop_assert_eq!(
                ctrl.get(i),
                reference.best[i.us()].as_ref().map(|r| r.ingress)
            );
        }
    }

    // Warm epoch transitions land on the same fixpoint as the reference
    // cold start of the final configuration (unique fixpoints: clean
    // policies only), across a chain of random deployments.
    #[test]
    fn warm_session_matches_reference_cold_start(
        topo_seed in 0u64..100,
        policy_seed in 0u64..50,
        chain in proptest::collection::vec(
            proptest::collection::vec(0u8..48, 4), 2..5),
    ) {
        let g = generate(&TopologyConfig::small(topo_seed));
        let origin = OriginAs::peering_style(&g, 4);
        let cfg = engine_config(policy_seed, 0.0, 0.0, true);
        let engine = BgpEngine::new(&g.topology, &cfg);
        let mut session = engine.session();
        prop_assert!(session.warm_reuse());
        let mut last = None;
        for knobs in &chain {
            let anns = announcements_from_knobs(&g.topology, &origin, knobs);
            let out = session
                .deploy_config_detailed(&origin, &anns, 200, SnapshotDetail::Full)
                .unwrap();
            last = Some((anns, out));
        }
        let (anns, out) = last.unwrap();
        let inj = origin.build_injections(&g.topology, &anns).unwrap();
        let reference = ref_propagate(&engine, &inj, 200);
        // The warm outcome's change log describes the transition, not the
        // cold start, so only the fixpoint state is compared.
        prop_assert_eq!(out.converged, reference.converged);
        for (i, (a, r)) in out.best.iter().zip(&reference.best).enumerate() {
            match (a, r) {
                (None, None) => {}
                (Some(a), Some(r)) => {
                    prop_assert_eq!(out.path_of(a), r.path.clone(), "path differs at AS {}", i);
                    prop_assert_eq!(a.ingress, r.ingress);
                    prop_assert_eq!(a.from_neighbor, r.from_neighbor);
                    prop_assert_eq!(a.local_pref, r.local_pref);
                    prop_assert_eq!(a.learned_from, r.learned_from);
                }
                _ => prop_assert!(false, "best presence differs at AS {}", i),
            }
        }
    }
}

/// Campaign-level differential: Warm and Cold executors at 1, 2, and 8
/// threads all agree with each other *and* with the reference propagator
/// run per configuration.
#[test]
fn campaigns_match_reference_across_modes_and_threads() {
    let world = generate(&TopologyConfig::small(7));
    let origin = OriginAs::peering_style(&world, 4);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 1,
            max_poison_configs: Some(8),
        },
    );

    // Reference catchments, one cold fixpoint per configuration.
    let reference: Vec<Vec<Option<LinkId>>> = schedule
        .iter()
        .map(|cfg| {
            let inj = origin
                .build_injections(&world.topology, &cfg.to_link_announcements())
                .unwrap();
            let r = ref_propagate(&engine, &inj, 200);
            assert!(r.converged);
            r.best
                .iter()
                .map(|b| b.as_ref().map(|r| r.ingress))
                .collect()
        })
        .collect();

    let mut campaigns = Vec::new();
    for mode in [CampaignMode::Warm, CampaignMode::Cold] {
        for threads in [1usize, 2, 8] {
            let c = run_campaign_parallel_mode(
                &engine,
                &origin,
                &schedule,
                CatchmentSource::ControlPlane,
                200,
                threads,
                mode,
            );
            for (k, cat) in c.catchments.iter().enumerate() {
                for i in world.topology.indices() {
                    assert_eq!(
                        cat.get(i),
                        reference[k][i.us()],
                        "{mode:?}/{threads} threads: catchment of AS {i:?} in config {k}"
                    );
                }
            }
            campaigns.push((mode, threads, c));
        }
    }
    // All six campaigns are mutually identical in results.
    let (_, _, anchor) = &campaigns[0];
    for (mode, threads, c) in &campaigns[1..] {
        assert_eq!(
            &anchor.catchments, &c.catchments,
            "catchments differ for {mode:?}/{threads}"
        );
        assert_eq!(
            anchor.clustering.clusters(),
            c.clustering.clusters(),
            "clusters differ for {mode:?}/{threads}"
        );
        assert_eq!(&anchor.tracked, &c.tracked);
    }
    // Warm reuse actually engaged (violator-free default would gate it
    // off; the default engine has violators, so sessions cold-start —
    // verify the stats reflect whichever regime is active).
    let (_, _, warm1) = &campaigns[0];
    assert_eq!(warm1.stats.mode, CampaignMode::Warm);
    assert!(warm1.stats.propagations + warm1.stats.memo_hits == schedule.len());
}
