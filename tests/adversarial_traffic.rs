//! End-to-end adversarial-traffic scenarios, pinned at the CI scale
//! (small topology, seed 7 — the same arm the scenario binaries gate with
//! `--check`): the reflection-attack triangle must recover the true
//! origins the victim can never see, and partial-SAV localization must
//! concentrate suspect volume on the spoof-capable pockets. Both run
//! through the exact accumulator *and* the count-min sketch, asserting
//! the `check()` contract holds on either — the sketch's one-sided error
//! may widen suspect sets but must not break either scenario's promise.

use trackdown_experiments::{scenarios, Options, Scale};

fn opts(sketch: Option<(usize, usize)>) -> Options {
    Options {
        scale: Scale::Small,
        seed: 7,
        sketch,
        ..Options::default()
    }
}

#[test]
fn amplification_recovers_origins_behind_reflectors_exact() {
    let outcome = scenarios::amplification(&opts(None));
    assert_eq!(outcome.check(), None, "{outcome:?}");
    // The victim's apparent sources are reflectors, never the origins.
    assert!(!outcome.origin_visible_to_victim);
    assert!(outcome.victim_reflector_ases > 0);
    assert!(outcome.victim_amplification >= 2.0);
    // Traceback from the origin vantage names what the victim cannot:
    // ≥90% of the baseline-observable true origins (the check already
    // enforces this; restated here so a contract change fails loudly).
    assert!(outcome.recovered * 10 >= outcome.observable * 9);
    // The exact accumulator reports a zero error bound and, with it, a
    // ranking that cannot flip.
    assert_eq!(outcome.error_bound, 0);
    assert!(outcome.ranking_stable);
}

#[test]
fn amplification_contract_survives_the_sketch() {
    let exact = scenarios::amplification(&opts(None));
    let sketch = scenarios::amplification(&opts(Some((64, 4))));
    assert_eq!(sketch.check(), None, "{sketch:?}");
    // Same attack, same origins — only the accumulator changed.
    assert_eq!(sketch.origin_ases, exact.origin_ases);
    assert_eq!(sketch.observable, exact.observable);
    // One-sided error: the sketch may name extra ASes, never fewer of
    // the true origins.
    assert!(sketch.recovered >= exact.recovered);
    for a in exact
        .origin_ases
        .iter()
        .filter(|a| exact.named_ases.contains(a))
    {
        assert!(
            sketch.named_ases.contains(a),
            "sketch dropped true origin AS {a:?} that the exact ranking named"
        );
    }
}

#[test]
fn partial_sav_concentrates_volume_on_spoof_capable_stubs() {
    let outcome = scenarios::partial_sav(&opts(None));
    assert_eq!(outcome.check(), None, "{outcome:?}");
    // The pocket is a strict, non-empty subset of the stubs.
    assert!(outcome.spoof_capable >= 1);
    assert!(outcome.spoof_capable < outcome.stubs);
    // ≥90% of suspect volume lands on spoof-capable pockets.
    assert!(outcome.volume_on_spoofers >= 0.9);
    assert_eq!(outcome.error_bound, 0);
}

#[test]
fn partial_sav_contract_survives_the_sketch() {
    let exact = scenarios::partial_sav(&opts(None));
    let sketch = scenarios::partial_sav(&opts(Some((64, 4))));
    assert_eq!(sketch.check(), None, "{sketch:?}");
    // The SAV deployment is seeded by the scenario, not the accumulator.
    assert_eq!(sketch.stubs, exact.stubs);
    assert_eq!(sketch.spoof_capable, exact.spoof_capable);
    assert!(sketch.volume_on_spoofers >= 0.9);
}
