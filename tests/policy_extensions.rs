//! Policy-extension layer: deployment assignment, per-extension drop
//! semantics, and the two compatibility guarantees the layer ships with —
//! extensions-off is byte-identical to the pre-extension engine (pinned
//! golden manifest), and extensions-on preserves campaign determinism.

use trackdown_suite::bgp::{Injection, PolicyTable};
use trackdown_suite::core::localize::run_campaign_recorded;
use trackdown_suite::obs::{CampaignRecorder, RunInfo};
use trackdown_suite::prelude::*;
use trackdown_suite::topology::cone::Tier;

/// Pre-change deterministic manifest (small topology, seed 11, warm mode),
/// generated from the engine before the extension layer existed.
const GOLDEN: &str = include_str!("golden/extensions_off_manifest.jsonl");

fn engine_config_with(extensions: ExtensionConfig) -> EngineConfig {
    EngineConfig {
        policy: PolicyConfig {
            extensions,
            ..PolicyConfig::default()
        },
        ..EngineConfig::default()
    }
}

/// With no extensions deployed the deterministic manifest must reproduce
/// the pre-change golden byte-for-byte: the extension layer may not touch
/// RNG draws, route attributes, event counts, or iteration order.
#[test]
fn extensions_off_manifest_matches_pre_change_golden() {
    let world = generate(&TopologyConfig::small(11));
    let origin = OriginAs::peering_style(&world, 4);
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 2,
            max_poison_configs: Some(12),
        },
    );
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let recorder = CampaignRecorder::new(true);
    let campaign = run_campaign_recorded(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
        CampaignMode::Warm,
        Some(&recorder),
    );
    let info = RunInfo {
        name: "extensions_off_golden".into(),
        seed: 11,
        policy_seed: 0,
        scale: "small".into(),
        mode: "warm".into(),
        threads: campaign.stats.threads,
        shards: campaign.stats.shards,
        trace: trackdown_suite::obs::trace_config_label(),
        schedule_len: campaign.configs.len(),
        deterministic: true,
    };
    let text = trackdown_suite::obs::render_manifest(&info, &recorder.take_records(), None);
    assert_eq!(
        text, GOLDEN,
        "extensions-off engine drifted from the pre-extension golden manifest"
    );
}

fn table_with(world: &GeneratedTopology, extensions: ExtensionConfig) -> (ConeInfo, PolicyTable) {
    let cones = ConeInfo::compute(&world.topology);
    let cfg = PolicyConfig {
        seed: 42,
        violator_fraction: 0.0,
        no_loop_prevention_fraction: 0.0,
        tier1_poison_filtering: false,
        extensions,
    };
    let table = PolicyTable::build(&world.topology, &cones, &cfg);
    (cones, table)
}

/// Deployment assignment is deterministic, respects the fraction extremes,
/// and the core bias actually over-represents the core.
#[test]
fn deployment_assignment_is_seeded_and_tier_biased() {
    let world = generate(&TopologyConfig::small(3));
    let n = world.topology.num_ases();

    // fraction 0 → nobody; fraction 1 → everybody, regardless of bias.
    let (_, t0) = table_with(&world, ExtensionConfig::single(PolicyExtension::Aspa, 0.0));
    assert_eq!(t0.num_deployers(PolicyExtension::Aspa), 0);
    assert!(!t0.has_extensions());
    let (_, t1) = table_with(&world, ExtensionConfig::single(PolicyExtension::Aspa, 1.0));
    assert_eq!(t1.num_deployers(PolicyExtension::Aspa), n);
    assert!(t1.has_extensions());

    // Same config twice → identical assignment (seeded, no ambient RNG).
    let (cones, ta) = table_with(&world, ExtensionConfig::single(PolicyExtension::Rov, 0.4));
    let (_, tb) = table_with(&world, ExtensionConfig::single(PolicyExtension::Rov, 0.4));
    for i in world.topology.indices() {
        assert_eq!(
            ta.deploys(i, PolicyExtension::Rov),
            tb.deploys(i, PolicyExtension::Rov)
        );
    }

    // Core bias: transit+tier1 deployment rate exceeds the stub rate.
    let (core_n, core_d, stub_n, stub_d) =
        world
            .topology
            .indices()
            .fold((0usize, 0usize, 0usize, 0usize), |(cn, cd, sn, sd), i| {
                let deployed = ta.deploys(i, PolicyExtension::Rov) as usize;
                match cones.tier(i) {
                    Tier::Tier1 | Tier::Transit => (cn + 1, cd + deployed, sn, sd),
                    _ => (cn, cd, sn + 1, sd + deployed),
                }
            });
    assert!(core_n > 0 && stub_n > 0);
    assert!(
        core_d * stub_n > stub_d * core_n,
        "core bias must over-deploy the core: core {core_d}/{core_n}, stub {stub_d}/{stub_n}"
    );
}

/// ASPA and the edge filter drop the poison sandwich (the origin ASN is
/// stub-attested and appears mid-path), while accepting the clean path —
/// and ROV accepts both, since poisoning preserves the true origin.
#[test]
fn aspa_and_edge_filter_break_poisoning_rov_does_not() {
    let world = generate(&TopologyConfig::small(7));
    let origin = OriginAs::peering_style(&world, 4);
    let provider = world
        .topology
        .index_of(origin.links[0].provider)
        .expect("provider resident");
    // A real neighbor of the provider, the generator's poison target shape.
    let victim = world
        .topology
        .asn_of(world.topology.neighbors(provider)[0].0);
    let poisoned = AsPath::poisoned_origin(origin.asn, &[victim]);
    let clean = AsPath::from_origin(origin.asn);

    for ext in [PolicyExtension::Aspa, PolicyExtension::EdgeFilter] {
        let (_, t) = table_with(&world, ExtensionConfig::single(ext, 1.0));
        assert!(
            t.accepts(&world.topology, provider, None, &clean),
            "{ext} must accept the clean announcement"
        );
        assert!(
            !t.accepts(&world.topology, provider, None, &poisoned),
            "{ext} must drop the poison sandwich"
        );
    }

    let (_, rov) = table_with(&world, ExtensionConfig::single(PolicyExtension::Rov, 1.0));
    assert!(rov.accepts(&world.topology, provider, None, &clean));
    assert!(
        rov.accepts(&world.topology, provider, None, &poisoned),
        "ROV sees the true origin last and must not drop the poison"
    );
    // A forged-origin announcement is dropped by ROV.
    let hijack = AsPath::from_origin(Asn(64_512));
    assert!(!rov.accepts(&world.topology, provider, None, &hijack));
}

/// Peerlock-lite drops customer/peer-learned paths containing a foreign
/// tier-1, from any deployer (not just tier-1s like the built-in filter).
#[test]
fn peerlock_lite_filters_tier1_poison_at_stubs() {
    let world = generate(&TopologyConfig::small(5));
    let origin = OriginAs::peering_style(&world, 4);
    let (cones, t) = table_with(
        &world,
        ExtensionConfig::single(PolicyExtension::PeerlockLite, 1.0),
    );
    let tier1_asn = world.topology.asn_of(cones.tier1s().next().expect("tier1"));
    let stub = world
        .topology
        .indices()
        .find(|&i| cones.tier(i) == Tier::Stub)
        .expect("stub");
    let poisoned = AsPath::poisoned_origin(origin.asn, &[tier1_asn]);
    assert!(
        !t.accepts(&world.topology, stub, None, &poisoned),
        "peerlock-lite deployer must drop a customer-learned tier-1 path"
    );
    let clean = AsPath::from_origin(origin.asn);
    assert!(t.accepts(&world.topology, stub, None, &clean));
}

/// Full campaigns with every extension deployed stay deterministic: two
/// identically configured runs produce identical catchments and clusters.
#[test]
fn extensions_on_campaign_is_deterministic() {
    let deployments: Vec<ExtensionDeployment> = PolicyExtension::ALL
        .into_iter()
        .map(|extension| ExtensionDeployment {
            extension,
            fraction: 0.3,
            bias: DeploymentBias::Core,
        })
        .collect();
    let run = || {
        let world = generate(&TopologyConfig::small(13));
        let origin = OriginAs::peering_style(&world, 4);
        let schedule = full_schedule(
            &world.topology,
            &origin,
            &GeneratorParams {
                max_removals: 2,
                max_poison_configs: Some(10),
            },
        );
        let cfg = engine_config_with(ExtensionConfig {
            deployments: deployments.clone(),
            ..ExtensionConfig::default()
        });
        let engine = BgpEngine::new(&world.topology, &cfg);
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        (campaign.catchments, campaign.tracked, campaign.records)
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
}

/// The OTC attribute crosses the engine: with universal only-to-customers
/// deployment the campaign still converges and catchments stay a partition
/// (valley-free export means OTC never fires, by RFC 9234 design).
#[test]
fn only_to_customers_is_inert_under_valley_free_export() {
    let world = generate(&TopologyConfig::small(21));
    let origin = OriginAs::peering_style(&world, 4);
    let anns: Vec<LinkAnnouncement> = origin.link_ids().map(LinkAnnouncement::plain).collect();
    let off = BgpEngine::new(&world.topology, &EngineConfig::default());
    let on = BgpEngine::new(
        &world.topology,
        &engine_config_with(ExtensionConfig::single(
            PolicyExtension::OnlyToCustomers,
            1.0,
        )),
    );
    let out_off = off.propagate_config(&origin, &anns, 200).unwrap();
    let out_on = on.propagate_config(&origin, &anns, 200).unwrap();
    assert!(out_on.converged);
    // Same reachability and same catchment partition: OTC marking alone
    // must not change who routes where.
    assert_eq!(out_on.reachable_count(), out_off.reachable_count());
    assert_eq!(
        Catchments::from_control_plane(&out_on),
        Catchments::from_control_plane(&out_off)
    );
}

/// Extension drops apply to direct injections too (`apply_injection` goes
/// through the same `accepts` path the export loop uses).
#[test]
fn injection_respects_extension_drops() {
    let world = generate(&TopologyConfig::small(7));
    let origin = OriginAs::peering_style(&world, 4);
    let provider = world
        .topology
        .index_of(origin.links[0].provider)
        .expect("provider resident");
    let victim = world
        .topology
        .asn_of(world.topology.neighbors(provider)[0].0);
    let (_, t) = table_with(
        &world,
        ExtensionConfig::single(PolicyExtension::EdgeFilter, 1.0),
    );
    let inj = Injection {
        provider,
        link: LinkId(0),
        path: AsPath::poisoned_origin(origin.asn, &[victim]),
        communities: CommunitySet::empty(),
    };
    assert!(!t.accepts(&world.topology, inj.provider, None, &inj.path));
}
