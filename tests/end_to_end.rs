//! End-to-end integration: topology → BGP → measurement plane → traffic →
//! localization, exercising every crate boundary in one flow.

use trackdown_suite::bgp::Catchments;
use trackdown_suite::measure::{MeasurementConfig, MeasurementPlane};
use trackdown_suite::prelude::*;
use trackdown_suite::traffic::{volume_per_link, Honeypot, HoneypotConfig};

fn world_and_origin(seed: u64) -> (GeneratedTopology, OriginAs) {
    let world = generate(&TopologyConfig::small(seed));
    let origin = OriginAs::peering_style(&world, 4);
    (world, origin)
}

#[test]
fn full_pipeline_with_measured_catchments_localizes_a_source() {
    // Seed retuned when the workspace moved to the vendored RNG stream:
    // naming requires noise-free measurement of the attacker's cluster,
    // which is seed-dependent (most seeds qualify, the old one no longer
    // did).
    let (world, origin) = world_and_origin(42);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let cones = ConeInfo::compute(&world.topology);
    let plane = MeasurementPlane::new(&world.topology, &cones, &MeasurementConfig::default());
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 2,
            max_poison_configs: Some(15),
        },
    );
    let campaign = run_campaign(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::Measured,
        Some(&plane),
        200,
    );
    assert!(campaign.imputation.is_some());
    assert!(!campaign.tracked.is_empty());

    // The attack, observed by a honeypot on the *data plane* (the
    // measured campaign only affects the origin's knowledge, not where
    // traffic actually flows).
    let attacker = campaign.tracked[campaign.tracked.len() / 2];
    let honeypot = Honeypot::new(HoneypotConfig::default());
    let mut placed_counts = vec![0u32; world.topology.num_ases()];
    placed_counts[attacker.us()] = 3;
    let placed = trackdown_suite::traffic::PlacedSources {
        counts: placed_counts,
    };
    let flows = spoofed_flows(
        &placed,
        u32::from_be_bytes([203, 0, 113, 1]),
        honeypot.config().prefix,
        &FlowConfig::default(),
    );
    let mut link_volumes = Vec::new();
    for cfg in &campaign.configs {
        let outcome = engine
            .propagate_config(&origin, &cfg.to_link_announcements(), 200)
            .unwrap();
        let truth = Catchments::from_data_plane(&outcome);
        let report = honeypot.observe(&truth, origin.num_links(), &flows);
        link_volumes.push(report.per_link_bytes);
    }
    // Honeypot rows are origin-width; the attribution plane wants its
    // exact width.
    let link_volumes = fit_link_volumes(&campaign, link_volumes);
    let suspects = rank_suspects(&campaign, &link_volumes);
    // Even with measurement noise, the attacker must be named.
    let named = suspect_ases(&suspects, 1.0);
    assert!(
        named.contains(&attacker),
        "attacker {} not among {} named suspects",
        world.topology.asn_of(attacker),
        named.len()
    );
}

#[test]
fn control_and_data_plane_catchments_agree_for_clean_policies() {
    let (world, origin) = world_and_origin(5);
    let cfg = EngineConfig {
        policy: PolicyConfig {
            seed: 1,
            violator_fraction: 0.0,
            no_loop_prevention_fraction: 0.0,
            tier1_poison_filtering: false,
            extensions: Default::default(),
        },
        ..EngineConfig::default()
    };
    let engine = BgpEngine::new(&world.topology, &cfg);
    let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
    let out = engine.propagate_config(&origin, &anns, 200).unwrap();
    let control = Catchments::from_control_plane(&out);
    let data = Catchments::from_data_plane(&out);
    for i in world.topology.indices() {
        assert_eq!(control.get(i), data.get(i));
    }
}

#[test]
fn whole_stack_is_deterministic() {
    let run = || {
        let (world, origin) = world_and_origin(123);
        let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
        let schedule = full_schedule(
            &world.topology,
            &origin,
            &GeneratorParams {
                max_removals: 1,
                max_poison_configs: Some(5),
            },
        );
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        (
            campaign.clustering.num_clusters(),
            campaign.clustering.mean_size(),
            campaign.catchments.clone(),
        )
    };
    let (c1, m1, cat1) = run();
    let (c2, m2, cat2) = run();
    assert_eq!(c1, c2);
    assert_eq!(m1, m2);
    assert_eq!(cat1, cat2);
}

#[test]
fn honeypot_volume_matches_attribution_math() {
    let (world, origin) = world_and_origin(9);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
    let out = engine.propagate_config(&origin, &anns, 200).unwrap();
    let truth = Catchments::from_data_plane(&out);

    let all: Vec<AsIndex> = world.topology.indices().collect();
    let placed = place_sources(
        world.topology.num_ases(),
        &all,
        SourcePlacement::Uniform { total: 40 },
        4,
    );
    let honeypot = Honeypot::new(HoneypotConfig::default());
    let flows = spoofed_flows(
        &placed,
        u32::from_be_bytes([203, 0, 113, 2]),
        honeypot.config().prefix,
        &FlowConfig::default(),
    );
    let report = honeypot.observe(&truth, origin.num_links(), &flows);
    // The honeypot's per-link accounting equals the analytic attribution
    // of per-AS volumes through the same catchments.
    let volumes = placed.volume_per_as(1_000 * 64);
    let expected = volume_per_link(&truth, &volumes, origin.num_links());
    assert_eq!(report.per_link_bytes, expected);
}

#[test]
fn measured_campaign_close_to_oracle_campaign() {
    let (world, origin) = world_and_origin(31);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let cones = ConeInfo::compute(&world.topology);
    let plane = MeasurementPlane::new(&world.topology, &cones, &MeasurementConfig::default());
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 1,
            max_poison_configs: Some(5),
        },
    );
    let oracle = run_campaign(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
    );
    let measured = run_campaign(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::Measured,
        Some(&plane),
        200,
    );
    // Where a source is tracked by both, the final measured catchment
    // agrees with the oracle most of the time.
    let mut common = 0usize;
    let mut agree = 0usize;
    for &s in &measured.tracked {
        for (mc, oc) in measured.catchments.iter().zip(&oracle.catchments) {
            if let (Some(a), Some(b)) = (mc.get(s), oc.get(s)) {
                common += 1;
                if a == b {
                    agree += 1;
                }
            }
        }
    }
    assert!(common > 0);
    let rate = agree as f64 / common as f64;
    assert!(rate > 0.85, "measured/oracle agreement too low: {rate}");
}
