//! Three-way differential suite: the delta propagation engine must be
//! indistinguishable — catchments, tracked set, clustering, per-config
//! records, suspect rankings — from both the warm-start executor and the
//! cold-start oracle, across thread counts and adversarial deployment
//! orders.
//!
//! Delta epochs change two things at once relative to warm epochs: the
//! seed set (injection diffing skips unchanged providers) and the
//! activation order (customer-cone rank scheduling instead of FIFO).
//! On Gao-Rexford-conformant engines the fixpoint is unique, so any
//! divergence is a delta bug — a stale direct route surviving a diff, a
//! rank tie processed inconsistently, a withdrawal cascade terminated
//! early. The adversarial cases below (poison-then-unpoison flips,
//! footprint-distance-*maximizing* schedules) drive exactly the
//! withdrawal-heavy transitions where such bugs would surface.

use proptest::prelude::*;
use trackdown_suite::core::localize::{run_campaign_parallel_mode, run_campaign_sharded_mode};
use trackdown_suite::core::schedule::footprint_distance;
use trackdown_suite::prelude::*;

/// Engine config with the violator knob explicit: `clean` engines have
/// unique fixpoints (true delta reuse); default engines keep the 8%
/// violator population and exercise the session's cold-start guard.
fn engine_config(clean: bool) -> EngineConfig {
    if clean {
        EngineConfig {
            policy: PolicyConfig {
                violator_fraction: 0.0,
                ..PolicyConfig::default()
            },
            ..EngineConfig::default()
        }
    } else {
        EngineConfig::default()
    }
}

/// A small synthetic Internet, a multi-PoP origin, and a (possibly
/// truncated) three-phase schedule.
fn scenario(
    seed: u64,
    pops: usize,
    max_removals: usize,
    max_poison: usize,
) -> (GeneratedTopology, OriginAs, Vec<AnnouncementConfig>) {
    let world = generate(&TopologyConfig::small(seed));
    let origin = OriginAs::peering_style(&world, pops);
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals,
            max_poison_configs: Some(max_poison),
        },
    );
    (world, origin, schedule)
}

/// The full equality obligation between two campaigns. Stats are exempt
/// by design (they describe *how* the executor ran, not what it found).
macro_rules! assert_campaigns_identical {
    ($a:expr, $b:expr) => {
        prop_assert_eq!(&$a.configs, &$b.configs);
        prop_assert_eq!(&$a.catchments, &$b.catchments);
        prop_assert_eq!(&$a.tracked, &$b.tracked);
        prop_assert_eq!($a.clustering.clusters(), $b.clustering.clusters());
        prop_assert_eq!(&$a.records, &$b.records);
        prop_assert_eq!($a.imputation, $b.imputation);
    };
}

/// Per-epoch oracle comparison for session-driven tests: the delta
/// session outcome must match a cold propagation of the same
/// configuration, in both catchment planes.
fn assert_outcome_matches_cold(
    engine: &BgpEngine<'_>,
    origin: &OriginAs,
    cfg: &AnnouncementConfig,
    delta: &RoutingOutcome,
) {
    let cold = engine
        .propagate_config(origin, &cfg.to_link_announcements(), 200)
        .expect("valid configuration");
    assert_eq!(delta.converged, cold.converged);
    assert_eq!(
        Catchments::from_control_plane(delta),
        Catchments::from_control_plane(&cold)
    );
    assert_eq!(
        Catchments::from_data_plane(delta),
        Catchments::from_data_plane(&cold)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The three-way oracle: Delta == Warm == Cold through the sequential
    // executor, all the way to suspect ranking, over both catchment
    // sources and both policy regimes.
    #[test]
    fn delta_equals_warm_equals_cold(
        seed in 0u64..500,
        pops in 3usize..6,
        max_removals in 0usize..3,
        max_poison in 4usize..12,
        data_plane in 0u8..2,
        clean in 0u8..2,
    ) {
        let (world, origin, schedule) = scenario(seed, pops, max_removals, max_poison);
        let engine = BgpEngine::new(&world.topology, &engine_config(clean == 1));
        let source = if data_plane == 1 {
            CatchmentSource::DataPlane
        } else {
            CatchmentSource::ControlPlane
        };
        let delta = run_campaign_mode(
            &engine, &origin, &schedule, source, None, 200, CampaignMode::Delta);
        let warm = run_campaign_mode(
            &engine, &origin, &schedule, source, None, 200, CampaignMode::Warm);
        let cold = run_campaign_mode(
            &engine, &origin, &schedule, source, None, 200, CampaignMode::Cold);
        assert_campaigns_identical!(delta, warm);
        assert_campaigns_identical!(delta, cold);
        // Suspect rankings must survive the full attribution pipeline.
        let volume: Vec<u64> = (0..world.topology.num_ases() as u64)
            .map(|i| 1 + i % 5)
            .collect();
        let dv = link_volume_matrix(&delta, &volume);
        let cv = link_volume_matrix(&cold, &volume);
        prop_assert_eq!(rank_suspects(&delta, &dv), rank_suspects(&cold, &cv));
        prop_assert_eq!(delta.stats.mode, CampaignMode::Delta);
        prop_assert_eq!(
            delta.stats.propagations + delta.stats.memo_hits,
            schedule.len()
        );
    }

    // Delta through the parallel and sharded executors vs the sequential
    // cold oracle, across the 1/2/8 thread counts the manifests promise
    // invariance over.
    #[test]
    fn delta_is_thread_and_shard_invariant(
        seed in 0u64..300,
        max_poison in 4usize..10,
        data_plane in 0u8..2,
        clean in 0u8..2,
    ) {
        let (world, origin, schedule) = scenario(seed, 4, 1, max_poison);
        let engine = BgpEngine::new(&world.topology, &engine_config(clean == 1));
        let source = if data_plane == 1 {
            CatchmentSource::DataPlane
        } else {
            CatchmentSource::ControlPlane
        };
        let volume: Vec<u64> = (0..world.topology.num_ases() as u64)
            .map(|i| 1 + i % 7)
            .collect();
        let cold = run_campaign_mode(
            &engine, &origin, &schedule, source, None, 200, CampaignMode::Cold);
        let cold_vols = link_volume_matrix(&cold, &volume);
        let cold_rank = rank_suspects(&cold, &cold_vols);
        for threads in [1usize, 2, 8] {
            let par = run_campaign_parallel_mode(
                &engine, &origin, &schedule, source, 200, threads, CampaignMode::Delta);
            assert_campaigns_identical!(par, cold);
            let vols = link_volume_matrix(&par, &volume);
            prop_assert_eq!(rank_suspects(&par, &vols), cold_rank.clone());
            let sharded = run_campaign_sharded_mode(
                &engine, &origin, &schedule, source, 200, threads, 4, CampaignMode::Delta);
            assert_campaigns_identical!(sharded, cold);
            prop_assert_eq!(sharded.stats.mode, CampaignMode::Delta);
        }
    }

    // Adversarial ordering 1: poison-then-unpoison flips, driven through
    // the session directly (the executors would reorder them away). Each
    // transition withdraws a poisoned announcement and restores the plain
    // one (or vice versa) — the withdrawal-cascade path where FIFO
    // processing path-hunts and rank scheduling must still converge to
    // the same fixpoint.
    #[test]
    fn poison_then_unpoison_cascades_match_cold(
        seed in 0u64..200,
        clean in 0u8..2,
        flips in 1usize..4,
    ) {
        let (world, origin, schedule) = scenario(seed, 4, 1, 8);
        let engine = BgpEngine::new(&world.topology, &engine_config(clean == 1));
        let baseline = &schedule[0];
        let poisoned: Vec<&AnnouncementConfig> = schedule
            .iter()
            .filter(|c| !c.poison.is_empty())
            .collect();
        if poisoned.is_empty() {
            return; // no poison-phase configs at this seed; vacuous case
        }
        let mut session = engine.session();
        for (i, p) in poisoned.iter().take(flips).enumerate() {
            // poison → unpoison → poison again: A;P unchanged, Q flips.
            for cfg in [*p, baseline, *p] {
                let out = session
                    .deploy_config_delta(&origin, &cfg.to_link_announcements(), 200)
                    .expect("valid configuration");
                assert_outcome_matches_cold(&engine, &origin, cfg, &out);
            }
            // Re-deploying the previous config identically must be a
            // zero-seed epoch on clean engines (diff is empty).
            if clean == 1 {
                let out = session
                    .deploy_config_delta(&origin, &poisoned[i].to_link_announcements(), 200)
                    .expect("valid configuration");
                prop_assert_eq!(out.events, 0, "identical redeploy must not propagate");
                prop_assert_eq!(out.routes_disturbed, 0);
            }
        }
    }

    // Adversarial ordering 2: deploy the schedule in a greedy
    // footprint-distance-MAXIMIZING chain — the exact opposite of the
    // warm-start order — so every transition is the largest available
    // edit (announce/withdraw/poison churn all at once).
    #[test]
    fn distance_maximizing_schedule_matches_cold(
        seed in 0u64..200,
        max_poison in 4usize..10,
        clean in 0u8..2,
    ) {
        let (world, origin, schedule) = scenario(seed, 4, 2, max_poison);
        let engine = BgpEngine::new(&world.topology, &engine_config(clean == 1));
        let mut remaining: Vec<usize> = (1..schedule.len()).collect();
        let mut order = vec![0usize];
        let mut current = 0usize;
        while !remaining.is_empty() {
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .max_by_key(|(_, &k)| footprint_distance(&schedule[current], &schedule[k]))
                .expect("non-empty");
            current = remaining.remove(pos);
            order.push(current);
        }
        let mut session = engine.session();
        for &k in &order {
            let out = session
                .deploy_config_delta(&origin, &schedule[k].to_link_announcements(), 200)
                .expect("valid configuration");
            assert_outcome_matches_cold(&engine, &origin, &schedule[k], &out);
        }
    }
}

/// Clean engine (unique fixpoints) with the given policy-extension
/// deployments activated.
fn engine_config_ext(deployments: Vec<ExtensionDeployment>) -> EngineConfig {
    let mut policy = PolicyConfig {
        violator_fraction: 0.0,
        ..PolicyConfig::default()
    };
    policy.extensions.deployments = deployments;
    EngineConfig {
        policy,
        ..EngineConfig::default()
    }
}

// Policy extensions drop routes at import time — each drop must surface
// as a non-viable activation to the delta engine, never as a stale
// entry it warm-reuses. Every extension, at partial (30%) and universal
// (100%) deployment (0% is the extension-free baseline the rest of the
// suite covers), must keep Delta == Warm == Cold through the parallel
// executor's 1/2/8 thread counts, all the way to suspect ranking.
#[test]
fn extensions_on_delta_equals_warm_equals_cold_across_threads() {
    let (world, origin, schedule) = scenario(29, 4, 1, 8);
    let volume: Vec<u64> = (0..world.topology.num_ases() as u64)
        .map(|i| 1 + i % 7)
        .collect();
    let mut arms: Vec<Vec<ExtensionDeployment>> = vec![vec![]];
    for ext in PolicyExtension::ALL {
        for fraction in [0.3, 1.0] {
            arms.push(vec![ExtensionDeployment {
                extension: ext,
                fraction,
                bias: DeploymentBias::Core,
            }]);
        }
    }
    // Mixed arm: every extension at once, partial deployment.
    arms.push(
        PolicyExtension::ALL
            .into_iter()
            .map(|extension| ExtensionDeployment {
                extension,
                fraction: 0.3,
                bias: DeploymentBias::Core,
            })
            .collect(),
    );
    for arm in arms {
        let engine = BgpEngine::new(&world.topology, &engine_config_ext(arm.clone()));
        let cold = run_campaign_mode(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
            CampaignMode::Cold,
        );
        let cold_vols = link_volume_matrix(&cold, &volume);
        let cold_rank = rank_suspects(&cold, &cold_vols);
        let warm = run_campaign_mode(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
            CampaignMode::Warm,
        );
        assert_eq!(&warm.catchments, &cold.catchments, "warm vs cold: {arm:?}");
        assert_eq!(&warm.records, &cold.records, "warm vs cold: {arm:?}");
        for threads in [1usize, 2, 8] {
            let delta = run_campaign_parallel_mode(
                &engine,
                &origin,
                &schedule,
                CatchmentSource::ControlPlane,
                200,
                threads,
                CampaignMode::Delta,
            );
            assert_eq!(
                &delta.catchments, &cold.catchments,
                "delta vs cold at {threads} threads: {arm:?}"
            );
            assert_eq!(&delta.tracked, &cold.tracked);
            assert_eq!(delta.clustering.clusters(), cold.clustering.clusters());
            assert_eq!(&delta.records, &cold.records);
            let vols = link_volume_matrix(&delta, &volume);
            assert_eq!(
                rank_suspects(&delta, &vols),
                cold_rank,
                "suspect ranking diverged at {threads} threads: {arm:?}"
            );
        }
    }
}

// Regression: a capped (non-converged) epoch must never be warm-reused
// by the next delta epoch. The capped run leaves stranded FIFO queue
// entries with `in_queue` set; a rank-scheduled delta epoch on top of
// them would drain only the rank buckets, freezing those ASes for the
// whole epoch while reporting convergence. The session must instead
// fall back to a cold start — and stay fixpoint-identical to the
// oracle from then on.
#[test]
fn capped_epoch_then_delta_falls_back_to_cold() {
    let (world, origin, schedule) = scenario(23, 4, 1, 8);
    let engine = BgpEngine::new(&world.topology, &engine_config(true));
    let mut session = engine.session();
    // A zero events budget caps the first deployment immediately,
    // leaving a populated activation queue behind.
    let capped = session
        .deploy_config_delta(&origin, &schedule[0].to_link_announcements(), 0)
        .expect("valid configuration");
    assert!(!capped.converged, "factor-0 cap must not converge");
    // Every later epoch gets a real budget; each must match a cold
    // propagation of the same configuration in both catchment planes.
    for cfg in schedule.iter().take(6) {
        let out = session
            .deploy_config_delta(&origin, &cfg.to_link_announcements(), 200)
            .expect("valid configuration");
        assert!(out.converged);
        assert_outcome_matches_cold(&engine, &origin, cfg, &out);
    }
    // Same hazard mid-session: cap a *delta* epoch, then resume.
    let _ = session.deploy_config_delta(&origin, &schedule[1].to_link_announcements(), 0);
    for cfg in schedule.iter().rev().take(4) {
        let out = session
            .deploy_config_delta(&origin, &cfg.to_link_announcements(), 200)
            .expect("valid configuration");
        assert_outcome_matches_cold(&engine, &origin, cfg, &out);
    }
}

// Delta is opt-in: the default entry points stay warm, and delta stats
// carry the disturbance accounting the bench snapshot publishes.
#[test]
fn delta_stats_report_disturbance() {
    let (world, origin, schedule) = scenario(17, 4, 1, 8);
    let engine = BgpEngine::new(&world.topology, &engine_config(true));
    let delta = run_campaign_mode(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
        CampaignMode::Delta,
    );
    let cold = run_campaign_mode(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
        CampaignMode::Cold,
    );
    assert_eq!(delta.catchments, cold.catchments);
    assert_eq!(delta.stats.mode, CampaignMode::Delta);
    // The first (cold) epoch alone disturbs every reachable AS; later
    // delta epochs only add their frontiers, so the total is at least
    // the baseline coverage but far below propagations × topology size.
    assert!(delta.stats.routes_disturbed >= delta.tracked.len());
    assert!(delta.stats.routes_disturbed < delta.stats.propagations * world.topology.num_ases());
}
