//! Integration checks against the exact combinatorial counts the paper
//! reports for its announcement schedule (§IV-a, §V-B).

use std::collections::BTreeSet;
use trackdown_suite::core::footprint::footprint_config_indices;
use trackdown_suite::core::generator::{location_phase, poison_targets, prepend_phase};
use trackdown_suite::prelude::*;

#[test]
fn paper_location_and_prepend_counts() {
    // "we limit r to 4, which requires Σ_{x=0..3} C(7,7−x) = 64
    // configurations"
    let loc = location_phase(7, 3);
    assert_eq!(loc.len(), 64);
    // "this requires an additional Σ_{x=0..3} [7−x]·C(7,7−x) = 294
    // configurations"
    let pre = prepend_phase(&loc);
    assert_eq!(pre.len(), 294);
    // 64 + 294 = 358 for the location+prepending phases.
    assert_eq!(loc.len() + pre.len(), 358);
}

#[test]
fn paper_footprint_subset_counts() {
    let loc = location_phase(7, 3);
    let mut schedule = loc.clone();
    schedule.extend(prepend_phase(&loc));
    // "the six locations line includes a subset of
    //  Σ_{x=0..2} [C(6,6−x) + (6−x)·C(6,6−x)] = 118 configurations"
    let keep6: BTreeSet<LinkId> = (0..6).map(LinkId).collect();
    assert_eq!(footprint_config_indices(&schedule, &keep6).len(), 118);
    // "the five locations line includes a subset of
    //  Σ_{x=0..1} [C(5,5−x) + (5−x)·C(5,5−x)] = 31 configurations"
    let keep5: BTreeSet<LinkId> = (0..5).map(LinkId).collect();
    assert_eq!(footprint_config_indices(&schedule, &keep5).len(), 31);
}

#[test]
fn peering_poison_limits_enforced() {
    let world = generate(&TopologyConfig::small(1));
    let origin = OriginAs::peering_style(&world, 4);
    // "The PEERING platform conservatively limits each announcement to two
    // poisoned ASes."
    assert_eq!(origin.max_poisons, 2);
    let too_many = LinkAnnouncement::poisoned(LinkId(0), vec![Asn(11), Asn(12), Asn(13)]);
    assert!(origin
        .build_injections(&world.topology, &[too_many])
        .is_err());
    // Two poisons pass, and the path carries the `o u o` sandwich.
    let ok = LinkAnnouncement::poisoned(LinkId(0), vec![Asn(11), Asn(12)]);
    let inj = origin
        .build_injections(&world.topology, &[ok])
        .expect("two poisons allowed");
    assert_eq!(inj[0].path.poisons_of(origin.asn), vec![Asn(11), Asn(12)]);
}

#[test]
fn prepend_count_matches_paper_constant() {
    // "the origin can prepend its AS number four times, which is longer
    // than most AS-paths in the Internet"
    let world = generate(&TopologyConfig::small(1));
    let origin = OriginAs::peering_style(&world, 4);
    assert_eq!(origin.prepend_times, 4);
    let inj = origin
        .build_injections(&world.topology, &[LinkAnnouncement::prepended(LinkId(0))])
        .unwrap();
    assert_eq!(inj[0].path.len(), 5); // origin + 4 prepends
}

#[test]
fn poison_targets_cover_every_pop_provider_neighborhood() {
    let world = generate(&TopologyConfig::medium(2));
    let origin = OriginAs::peering_style(&world, 5);
    let targets = poison_targets(&world.topology, &origin);
    // Every PoP provider with at least one eligible neighbor contributes.
    for link in &origin.links {
        let p = world.topology.index_of(link.provider).unwrap();
        let eligible = world
            .topology
            .neighbors(p)
            .iter()
            .filter(|(n, _)| {
                let asn = world.topology.asn_of(*n);
                asn != origin.asn && !origin.links.iter().any(|l| l.provider == asn)
            })
            .count();
        if eligible > 0 {
            assert!(
                targets.iter().any(|t| t.provider == link.provider),
                "provider {} contributed no targets",
                link.provider
            );
        }
    }
    // Targets are unique per the paper's one-config-per-neighbor counting.
    let mut asns: Vec<Asn> = targets.iter().map(|t| t.target).collect();
    asns.sort_unstable();
    let before = asns.len();
    asns.dedup();
    assert_eq!(asns.len(), before);
}

/// The paper's end-to-end schedule size at PEERING parameters:
/// 64 location plus 294 prepending plus 347 poisoning = 705
/// configurations (§IV-a). The poisoning count depends on the provider
/// neighborhoods of the 7 PoPs, so this runs on the paper-proportioned
/// topology (12 tier-1s, 80 transits, 1 910 stubs — §V-A's 2 002-AS
/// setting) at a pinned seed whose 7-PoP origin sees exactly 347
/// distinct provider neighbors.
#[test]
fn paper_full_schedule_is_705_configurations() {
    let world = generate(&TopologyConfig::paper(384));
    assert_eq!(world.topology.num_ases(), 2_002);
    let origin = OriginAs::peering_style(&world, 7);
    assert_eq!(origin.num_links(), 7);
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 3,
            max_poison_configs: None,
        },
    );
    let count = |p: Phase| schedule.iter().filter(|c| c.phase == p).count();
    assert_eq!(count(Phase::Location), 64);
    assert_eq!(count(Phase::Prepend), 294);
    assert_eq!(count(Phase::Poison), 347);
    assert_eq!(schedule.len(), 705);
    for cfg in &schedule {
        cfg.validate(&origin)
            .expect("paper schedule config invalid");
    }
}

#[test]
fn full_schedule_validates_against_origin() {
    let world = generate(&TopologyConfig::medium(3));
    let origin = OriginAs::peering_style(&world, 7);
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 3,
            max_poison_configs: None,
        },
    );
    // 64 + 294 location/prepend configs plus one per poison target.
    let poisons = schedule.iter().filter(|c| c.phase == Phase::Poison).count();
    assert_eq!(schedule.len(), 358 + poisons);
    assert!(poisons > 0);
    for cfg in &schedule {
        cfg.validate(&origin).expect("schedule config invalid");
    }
}
