//! Degenerate-campaign coverage: zero configurations, zero tracked
//! sources, and all-unobserved catchments must flow through the whole
//! attribution plane — cluster → rank → estimate → report — without
//! panicking, the indexed paths must still agree with the scans there,
//! and a recorded campaign at the edge of the schedule space must still
//! emit a manifest the checked-in validator accepts.
//!
//! These are the inputs the incremental index is most likely to get wrong
//! (empty delta lists, zero-width volume vectors, clusters nobody ever
//! observed), and the width-contract regression for the volume-vector
//! bug `rank_suspects` used to paper over with `unwrap_or(0)`.

use trackdown_suite::core::localize::{
    match_fraction_scores, match_fraction_scores_rescan, run_campaign_recorded,
};
use trackdown_suite::obs::{validate_manifest, CampaignRecorder, RunInfo};
use trackdown_suite::prelude::*;

/// Run the full read-side of the attribution plane on a campaign and the
/// matching scan references; returns the suspect list for further checks.
fn exercise_attribution(campaign: &Campaign, link_volumes: &[Vec<u64>]) -> Vec<AsIndex> {
    let suspects = rank_suspects(campaign, link_volumes);
    assert_eq!(suspects, rank_suspects_rescan(campaign, link_volumes));
    let estimates = estimate_cluster_volumes(campaign, link_volumes, 10);
    assert_eq!(
        estimates,
        estimate_cluster_volumes_rescan(campaign, link_volumes, 10)
    );
    assert_eq!(
        match_fraction_scores(campaign, link_volumes),
        match_fraction_scores_rescan(campaign, link_volumes)
    );
    // The report surface: summary stats, CCDF, singleton fraction, and
    // per-source lookups must all tolerate the degenerate partition.
    let c = &campaign.clustering;
    let _ = (
        c.stats(),
        c.size_ccdf(),
        c.mean_size(),
        c.singleton_fraction(),
    );
    assert_eq!(c.sizes().iter().sum::<usize>(), c.sources().len());
    for &s in &campaign.tracked {
        assert_eq!(c.cluster_of(s), c.cluster_of_scan(s));
        assert_eq!(c.cluster_size_of(s), c.cluster_size_of_scan(s));
    }
    suspect_ases(&suspects, 1.0)
}

/// Hand-assemble a campaign from raw parts the way `assemble_campaign`
/// would, bypassing the executor so we can reach shapes the generator
/// never produces.
fn synthetic_campaign(tracked: Vec<AsIndex>, catchments: Vec<Catchments>) -> Campaign {
    let (clustering, attribution) = AttributionIndex::build(tracked.clone(), &catchments);
    Campaign {
        configs: Vec::new(),
        catchments,
        tracked,
        clustering,
        attribution,
        records: Vec::new(),
        imputation: None,
        stats: CampaignStats::default(),
    }
}

/// Zero configurations: one undifferentiated cluster, no deltas, no
/// volume rows. Nothing is observable, so nothing may be a suspect — and
/// nothing may panic on the way to saying so.
#[test]
fn zero_config_campaign_flows_through() {
    let tracked: Vec<AsIndex> = (0..12).map(AsIndex).collect();
    let campaign = synthetic_campaign(tracked, Vec::new());
    assert_eq!(campaign.attribution.num_configs(), 0);
    assert_eq!(campaign.attribution.num_links(), 0);
    assert_eq!(campaign.clustering.num_clusters(), 1);
    assert_eq!(campaign.attribution.final_num_clusters(), 1);
    assert!(campaign.attribution.final_links()[0].is_empty());
    let named = exercise_attribution(&campaign, &[]);
    assert!(named.is_empty(), "no observations, no suspects");
}

/// Zero tracked sources: an empty partition (0 clusters) refined through
/// real-shaped catchments. Every derived structure is empty; every query
/// returns the empty answer.
#[test]
fn zero_tracked_sources_flow_through() {
    let catchments: Vec<Catchments> = (0..4)
        .map(|k| {
            let mut c = Catchments::unassigned(16);
            for i in 0..16u32 {
                c.set(AsIndex(i), Some(LinkId(((i + k) % 3) as u8)));
            }
            c
        })
        .collect();
    let campaign = synthetic_campaign(Vec::new(), catchments);
    assert_eq!(campaign.clustering.num_clusters(), 0);
    assert_eq!(campaign.attribution.final_num_clusters(), 0);
    assert_eq!(campaign.attribution.total_splits(), 0);
    assert!(campaign.attribution.final_links().is_empty());
    // No tracked clusters means an attribution width of zero, and the
    // exact width contract demands empty rows to match.
    assert_eq!(campaign.attribution.num_links(), 0);
    let vols = vec![Vec::new(); 4];
    let named = exercise_attribution(&campaign, &vols);
    assert!(named.is_empty());
    assert_eq!(campaign.clustering.cluster_of(AsIndex(3)), None);
    assert_eq!(campaign.clustering.cluster_size_of(AsIndex(3)), None);
}

/// All-unobserved catchments: every tracked source maps to `None` in
/// every configuration. The partition never splits, no cluster is ever
/// observed on a link, and the suspect/estimate/report surfaces must all
/// return empty rather than dividing by an observation count of zero.
#[test]
fn all_unobserved_catchments_flow_through() {
    let tracked: Vec<AsIndex> = (0..9).map(AsIndex).collect();
    let catchments: Vec<Catchments> = (0..5).map(|_| Catchments::unassigned(9)).collect();
    let campaign = synthetic_campaign(tracked, catchments);
    assert_eq!(campaign.clustering.num_clusters(), 1, "never split");
    assert_eq!(campaign.attribution.num_links(), 0);
    assert!(campaign.attribution.final_links()[0]
        .iter()
        .all(|l| l.is_none()));
    // num_links() = 0, so the exact width contract wants empty rows.
    let vols = vec![Vec::new(); 5];
    let named = exercise_attribution(&campaign, &vols);
    assert!(named.is_empty(), "unobserved clusters are never suspects");
    assert!(estimate_cluster_volumes(&campaign, &vols, 10).is_empty());
}

/// The width-contract regression (the bug this PR fixes): a volume row
/// narrower than the links the campaign routed onto used to read as
/// zero volume via `unwrap_or(0)` and silently exonerate clusters; it
/// must now be rejected loudly before any attribution math runs.
#[test]
#[should_panic(expected = "silently exonerate")]
fn short_volume_rows_are_rejected_not_zeroed() {
    let tracked: Vec<AsIndex> = (0..6).map(AsIndex).collect();
    let mut cat = Catchments::unassigned(6);
    for i in 0..6u32 {
        cat.set(AsIndex(i), Some(LinkId((i % 4) as u8)));
    }
    let campaign = synthetic_campaign(tracked, vec![cat]);
    assert_eq!(campaign.attribution.num_links(), 4);
    // Row of width 2 where links 0..4 were routed: short.
    let _ = rank_suspects(&campaign, &[vec![5, 5]]);
}

/// The over-wide side of the width contract: a row wider than the
/// attribution plane carries entries no tracked cluster can be matched
/// against — almost always a matrix built for the wrong link count — and
/// must be rejected, not silently truncated (`fit_link_volumes` is the
/// explicit opt-in for honeypot-shaped rows).
#[test]
#[should_panic(expected = "silently ignored")]
fn wide_volume_rows_are_rejected_not_ignored() {
    let tracked: Vec<AsIndex> = (0..6).map(AsIndex).collect();
    let mut cat = Catchments::unassigned(6);
    for i in 0..6u32 {
        cat.set(AsIndex(i), Some(LinkId((i % 4) as u8)));
    }
    let campaign = synthetic_campaign(tracked, vec![cat]);
    assert_eq!(campaign.attribution.num_links(), 4);
    // Row of width 6 where the attribution plane spans exactly 4: wide.
    let _ = rank_suspects(&campaign, &[vec![5, 5, 5, 5, 9, 9]]);
}

/// A recorded campaign at the smallest end of the schedule space (the
/// baseline configuration alone — one epoch, no refinement deltas beyond
/// the first) must still produce a manifest `validate_manifest` accepts.
#[test]
fn single_config_recorded_campaign_manifest_validates() {
    let world = generate(&TopologyConfig::small(31));
    let origin = OriginAs::peering_style(&world, 4);
    let mut schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 0,
            max_poison_configs: Some(0),
        },
    );
    schedule.truncate(1);
    assert_eq!(schedule.len(), 1, "baseline-only schedule");
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let recorder = CampaignRecorder::new(true);
    let campaign = run_campaign_recorded(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
        CampaignMode::Warm,
        Some(&recorder),
    );
    assert_eq!(campaign.attribution.num_configs(), 1);
    assert_eq!(
        campaign.attribution.final_num_clusters(),
        campaign.clustering.num_clusters()
    );
    // One configuration cannot split the initial cluster set apart from
    // partitioning it by the baseline catchment; still a valid campaign.
    let volume = vec![1u64; world.topology.num_ases()];
    let vols = link_volume_matrix(&campaign, &volume);
    let _ = exercise_attribution(&campaign, &vols);

    let records = recorder.take_records();
    assert_eq!(records.len(), 1);
    let text = trackdown_suite::obs::render_manifest(
        &RunInfo {
            name: "degenerate_campaigns".into(),
            seed: 31,
            policy_seed: 0,
            scale: "small".into(),
            mode: "warm".into(),
            threads: campaign.stats.threads,
            shards: campaign.stats.shards,
            trace: "off".into(),
            schedule_len: campaign.configs.len(),
            deterministic: true,
        },
        &records,
        None,
    );
    let summary = validate_manifest(&text).expect("degenerate manifest validates");
    assert_eq!(summary.epochs, 1);
    assert_eq!(summary.schedule_len, 1);
    assert!(summary.deterministic);
}
