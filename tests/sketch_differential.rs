//! Differential suite for the streaming attribution plane: on every
//! proptest-generated campaign — Warm, Delta and Cold executors, 1/2/8
//! worker threads, planted attacker volumes — the approximate path
//! (flows through a count-min [`SketchAccumulator`], read back by
//! `rank_suspects_acc` / `estimate_cluster_volumes_acc`) must bracket the
//! exact path (`link_volume_matrix` + `rank_suspects`) within the
//! accumulator's own deterministic error bound:
//!
//! * every `(config, link)` counter sits in `[exact, exact + bound]`
//!   (one-sided overestimation, never an underestimate);
//! * the sketch suspect set is a superset of the exact one — an
//!   overestimate can add suspects but never silently exonerate;
//! * exact suspects separated by more than the bound keep their relative
//!   order in the sketch ranking;
//! * interval estimates from both paths contain the planted ground truth.
//!
//! The exact streaming accumulator ([`BatchedDenseAccumulator`]) must
//! instead reproduce `link_volume_matrix` *bit-for-bit* — it is the
//! same-trait exact reference that separates "approximation error" from
//! "ingest bug". This mirrors the role `attribution_differential.rs`
//! plays for the indexed attribution plane.

use proptest::prelude::*;
use std::cell::RefCell;
use std::collections::BTreeSet;
use trackdown_suite::core::localize::run_campaign_parallel_mode;
use trackdown_suite::core::online::{localize_online, localize_online_acc, OnlineOptions};
use trackdown_suite::prelude::*;
use trackdown_suite::traffic::{volume_per_link, Flow};

fn scenario(
    seed: u64,
    pops: usize,
    max_removals: usize,
    max_poison: usize,
) -> (GeneratedTopology, OriginAs, Vec<AnnouncementConfig>) {
    let world = generate(&TopologyConfig::small(seed));
    let origin = OriginAs::peering_style(&world, pops);
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals,
            max_poison_configs: Some(max_poison),
        },
    );
    (world, origin, schedule)
}

/// Spread `n` attackers across the tracked set at deterministic,
/// seed-dependent offsets and return the per-AS volume vector.
fn plant_attackers(
    world: &GeneratedTopology,
    campaign: &Campaign,
    n: usize,
    salt: u64,
) -> Vec<u64> {
    let mut volume = vec![0u64; world.topology.num_ases()];
    if campaign.tracked.is_empty() {
        return volume;
    }
    for k in 0..n {
        let pos = ((salt as usize).wrapping_mul(2654435761) + k * 7919) % campaign.tracked.len();
        volume[campaign.tracked[pos].us()] = 100_000 * (k as u64 + 1);
    }
    volume
}

/// Split a per-AS volume vector into flows of at most 37 000 bytes each,
/// so every attacker's volume arrives as several flows for the same key —
/// the repeated-key pattern conservative update has to get right.
fn flows_from_volume(volume: &[u64]) -> Vec<Flow> {
    let mut flows = Vec::new();
    for (i, &total) in volume.iter().enumerate() {
        let mut left = total;
        while left > 0 {
            let bytes = left.min(37_000);
            flows.push(Flow {
                src_as: AsIndex(i as u32),
                claimed_ip: 0xCB00_7101,
                dst_ip: 0xCB00_7201,
                packets: bytes.div_ceil(64),
                bytes,
                spoofed: true,
            });
            left -= bytes;
        }
    }
    flows
}

/// Stream `flows` into a fresh width×depth sketch, one campaign
/// configuration per sketch row, in small batches.
fn sketch_from(
    campaign: &Campaign,
    flows: &[Flow],
    width: usize,
    depth: usize,
) -> SketchAccumulator {
    let mut acc = SketchAccumulator::new(
        campaign.catchments.len(),
        campaign.attribution.num_links(),
        width,
        depth,
        0xD1FF,
    );
    for (c, cat) in campaign.catchments.iter().enumerate() {
        ingest_stream(&mut acc, c, cat, flows, 17);
    }
    acc
}

/// The full bracket obligation between one sketch and the exact rows on
/// one campaign (macro so proptest failure locations stay useful).
macro_rules! assert_sketch_brackets_exact {
    ($campaign:expr, $vols:expr, $volume:expr, $sketch:expr) => {
        let bound = $sketch.error_bound();

        // 1. Every counter is a one-sided overestimate within the bound.
        for (c, row) in $vols.iter().enumerate() {
            for (l, &exact) in row.iter().enumerate() {
                let est = $sketch.volume(c, LinkId(l as u8));
                prop_assert!(
                    est >= exact,
                    "sketch underestimated ({c},{l}): {est} < {exact}"
                );
                prop_assert!(
                    est - exact <= bound,
                    "sketch ({c},{l}) overestimate {} beyond bound {bound}",
                    est - exact
                );
            }
        }

        // 2. Suspect superset: overestimation never exonerates.
        let exact_suspects = rank_suspects(&$campaign, &$vols);
        let ranked = rank_suspects_acc(&$campaign, &$sketch);
        let exact_ids: BTreeSet<usize> = exact_suspects.iter().map(|s| s.cluster).collect();
        let sketch_ids: BTreeSet<usize> = ranked.suspects.iter().map(|s| s.cluster).collect();
        prop_assert!(
            exact_ids.is_subset(&sketch_ids),
            "sketch dropped exact suspects: {:?}",
            exact_ids.difference(&sketch_ids).collect::<Vec<_>>()
        );
        prop_assert_eq!(ranked.error_bound, bound);

        // 3. Every planted attacker's cluster named by the exact ranking
        //    is named by the sketch ranking too.
        for (a, &v) in $volume.iter().enumerate() {
            if v == 0 {
                continue;
            }
            if let Some(cl) = $campaign.clustering.cluster_of(AsIndex(a as u32)) {
                if exact_ids.contains(&(cl as usize)) {
                    prop_assert!(
                        sketch_ids.contains(&(cl as usize)),
                        "attacker AS {a} (cluster {cl}) missing from sketch suspects"
                    );
                }
            }
        }

        // 4. Exact suspects separated by more than the bound keep their
        //    relative order: sketch_j <= v_j + B < v_i <= sketch_i.
        let sketch_pos: std::collections::HashMap<usize, usize> = ranked
            .suspects
            .iter()
            .enumerate()
            .map(|(p, s)| (s.cluster, p))
            .collect();
        for i in 0..exact_suspects.len() {
            for j in (i + 1)..exact_suspects.len() {
                let (a, b) = (&exact_suspects[i], &exact_suspects[j]);
                if a.volume_upper_bound > b.volume_upper_bound.saturating_add(bound) {
                    let (pa, pb) = (sketch_pos[&a.cluster], sketch_pos[&b.cluster]);
                    prop_assert!(
                        pa < pb,
                        "clusters {} and {} flipped in the sketch ranking despite a \
                         gap above the bound",
                        a.cluster,
                        b.cluster
                    );
                }
            }
        }

        // 5. Interval estimates from both paths contain the planted truth.
        let exact_est = estimate_cluster_volumes(&$campaign, &$vols, 10);
        let sketch_est = estimate_cluster_volumes_acc(&$campaign, &$sketch, 10);
        let mut truth: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
        for (a, &v) in $volume.iter().enumerate() {
            if v > 0 {
                if let Some(cl) = $campaign.clustering.cluster_of(AsIndex(a as u32)) {
                    *truth.entry(cl as usize).or_insert(0) += v;
                }
            }
        }
        for est in [&exact_est, &sketch_est] {
            for e in est.iter() {
                let t = truth.get(&e.cluster).copied().unwrap_or(0);
                prop_assert!(
                    e.lower <= t && t <= e.upper.saturating_add(bound),
                    "cluster {} truth {t} outside [{}, {}] (+bound {bound})",
                    e.cluster,
                    e.lower,
                    e.upper
                );
            }
        }
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Warm, Delta and Cold campaigns: the sketch path must bracket the
    // exact path on each, and the exact streaming accumulator must equal
    // the matrix build bit-for-bit.
    #[test]
    fn sketch_brackets_exact_across_modes(
        seed in 0u64..500,
        pops in 3usize..6,
        max_poison in 4usize..12,
        attackers in 1usize..4,
    ) {
        let (world, origin, schedule) = scenario(seed, pops, 1, max_poison);
        let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
        for mode in [CampaignMode::Warm, CampaignMode::Delta, CampaignMode::Cold] {
            let campaign = run_campaign_mode(
                &engine, &origin, &schedule, CatchmentSource::ControlPlane,
                None, 200, mode);
            let volume = plant_attackers(&world, &campaign, attackers, seed);
            let vols = link_volume_matrix(&campaign, &volume);
            let flows = flows_from_volume(&volume);

            // Exact streaming reference: bit-identical to the matrix.
            let mut dense = BatchedDenseAccumulator::new(
                campaign.catchments.len(), campaign.attribution.num_links());
            for (c, cat) in campaign.catchments.iter().enumerate() {
                ingest_stream(&mut dense, c, cat, &flows, 17);
            }
            prop_assert_eq!(&dense.dense_rows(), &vols);
            prop_assert_eq!(dense.error_bound(), 0);

            // A roomy sketch and a deliberately starved one: the bracket
            // obligation holds at any resolution, only the bound grows.
            let roomy = sketch_from(&campaign, &flows, 256, 4);
            assert_sketch_brackets_exact!(campaign, vols, volume, roomy);
            let starved = sketch_from(&campaign, &flows, 2, 1);
            assert_sketch_brackets_exact!(campaign, vols, volume, starved);
        }
    }

    // Parallel campaigns across worker counts: the campaign (and thus the
    // sketch ranking) must come out identical whatever the thread count.
    #[test]
    fn sketch_ranking_identical_across_threads(
        seed in 0u64..500,
        max_poison in 4usize..10,
        attackers in 1usize..4,
    ) {
        let (world, origin, schedule) = scenario(seed, 4, 1, max_poison);
        let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
        let mut golden: Option<RankedSuspects> = None;
        for threads in [1usize, 2, 8] {
            let campaign = run_campaign_parallel_mode(
                &engine, &origin, &schedule, CatchmentSource::ControlPlane,
                200, threads, CampaignMode::Warm);
            let volume = plant_attackers(&world, &campaign, attackers, seed);
            let vols = link_volume_matrix(&campaign, &volume);
            let flows = flows_from_volume(&volume);
            let sketch = sketch_from(&campaign, &flows, 128, 4);
            assert_sketch_brackets_exact!(campaign, vols, volume, sketch);
            let ranked = rank_suspects_acc(&campaign, &sketch);
            match &golden {
                None => golden = Some(ranked),
                Some(g) => {
                    prop_assert_eq!(&g.suspects, &ranked.suspects);
                    prop_assert_eq!(g.error_bound, ranked.error_bound);
                    prop_assert_eq!(g.stable, ranked.stable);
                }
            }
        }
    }
}

/// Adversarial collisions, pinned concrete: a 2×1 sketch forces every
/// link into one of two buckets, the worst case for conservative update.
/// Estimates still never underestimate and stay within the enumerated
/// bound, and the bound is honest — at least the largest colliding mass.
#[test]
fn adversarial_collisions_stay_within_enumerated_bound() {
    let mut s = CountMinSketch::new(2, 1, 0xC0111DE);
    let truth: Vec<u64> = (0..12u64).map(|k| (k + 1) * 1_000).collect();
    for (k, &v) in truth.iter().enumerate() {
        s.record(k, v);
    }
    let bound = s.collision_bound(truth.len());
    assert!(bound > 0, "12 keys in 2 buckets must collide");
    for (k, &v) in truth.iter().enumerate() {
        let est = s.estimate(k);
        assert!(est >= v, "underestimate at key {k}");
        assert!(est - v <= bound, "key {k}: {} > bound {bound}", est - v);
    }
    // The bound must dominate the worst observed overestimate.
    let worst = truth
        .iter()
        .enumerate()
        .map(|(k, &v)| s.estimate(k) - v)
        .max()
        .unwrap();
    assert!(bound >= worst);

    // Widening the sketch must deflate the bound below the grand total
    // (at 2×1 it is honestly vacuous — every key shares a bucket value).
    let mut roomy = CountMinSketch::new(64, 4, 0xC0111DE);
    for (k, &v) in truth.iter().enumerate() {
        roomy.record(k, v);
    }
    let roomy_bound = roomy.collision_bound(truth.len());
    assert!(
        roomy_bound < bound,
        "wider sketch did not tighten the bound"
    );
    assert!(roomy_bound < truth.iter().sum::<u64>());
    for (k, &v) in truth.iter().enumerate() {
        assert!(roomy.estimate(k) >= v);
        assert!(roomy.estimate(k) - v <= roomy_bound);
    }
}

/// The online loop driven by a sketch-backed accumulator oracle still
/// corners the attacker, and a batched-dense oracle reproduces the exact
/// volume-vector oracle's result identically.
#[test]
fn online_loop_with_sketch_oracle_names_attacker() {
    let (world, origin, schedule) = scenario(29, 4, 1, 12);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let campaign = run_campaign(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
    );
    let attacker = campaign.tracked[campaign.tracked.len() / 4];
    let mut vol = vec![0u64; world.topology.num_ases()];
    vol[attacker.us()] = 1_000_000;
    let flows = flows_from_volume(&vol);
    let num_links = origin.num_links();

    let session = RefCell::new(engine.session());
    let deploy = |cfg: &AnnouncementConfig| {
        Catchments::from_data_plane(
            &session
                .borrow_mut()
                .deploy_config(&origin, &cfg.to_link_announcements(), 200)
                .expect("valid config"),
        )
    };
    let opts = OnlineOptions {
        max_configs: 20,
        target_suspects: 5,
        greedy: true,
        prefixes: 1,
    };
    let measure = |idx: usize, _cfg: &AnnouncementConfig| campaign.catchments[idx].clone();

    // Exact oracle (volume vector) vs batched-dense oracle: identical.
    let exact = localize_online(
        &schedule,
        Some(&campaign.catchments),
        &campaign.tracked,
        &|cfg| volume_per_link(&deploy(cfg), &vol, num_links),
        &measure,
        opts,
    );
    let dense = localize_online_acc(
        &schedule,
        Some(&campaign.catchments),
        &campaign.tracked,
        &|cfg| {
            let mut acc = BatchedDenseAccumulator::new(1, num_links);
            ingest_stream(&mut acc, 0, &deploy(cfg), &flows, 16);
            Box::new(acc) as Box<dyn VolumeAccumulator>
        },
        &measure,
        opts,
    );
    assert_eq!(exact, dense, "batched-dense oracle diverged from exact");
    assert!(exact.suspects.contains(&attacker), "attacker escaped");

    // Sketch oracle: the suspect set may widen (one-sided error) but can
    // never lose the attacker.
    let sketch = localize_online_acc(
        &schedule,
        Some(&campaign.catchments),
        &campaign.tracked,
        &|cfg| {
            let mut acc = SketchAccumulator::new(1, num_links, 64, 4, 0xD1FF);
            ingest_stream(&mut acc, 0, &deploy(cfg), &flows, 16);
            Box::new(acc) as Box<dyn VolumeAccumulator>
        },
        &measure,
        opts,
    );
    assert!(
        sketch.suspects.contains(&attacker),
        "sketch oracle exonerated the attacker"
    );
    let exact_set: BTreeSet<AsIndex> = exact.suspects.iter().copied().collect();
    let sketch_set: BTreeSet<AsIndex> = sketch.suspects.iter().copied().collect();
    assert!(
        exact_set.is_subset(&sketch_set),
        "sketch oracle dropped exact suspects"
    );
}

/// Streaming ingest maintains the observability counters: the flow and
/// byte totals grow by at least what was just ingested (other tests may
/// run concurrently, so only the lower bound is checkable).
#[test]
fn ingest_counters_grow_with_streamed_flows() {
    let (world, origin, schedule) = scenario(31, 4, 1, 8);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let campaign = run_campaign(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
    );
    let volume = plant_attackers(&world, &campaign, 2, 31);
    let flows = flows_from_volume(&volume);
    let bytes: u64 = flows.iter().map(|f| f.bytes).sum();
    let obs = trackdown_suite::obs::global();
    let flows_before = obs.counter("traffic.ingest.flows").get();
    let bytes_before = obs.counter("traffic.ingest.bytes").get();

    let mut acc = SketchAccumulator::new(
        campaign.catchments.len(),
        campaign.attribution.num_links(),
        64,
        4,
        0xD1FF,
    );
    for (c, cat) in campaign.catchments.iter().enumerate() {
        ingest_stream(&mut acc, c, cat, &flows, 16);
    }

    let configs = campaign.catchments.len() as u64;
    assert!(
        obs.counter("traffic.ingest.flows").get() - flows_before >= flows.len() as u64 * configs,
        "flow counter did not cover the streamed batches"
    );
    assert!(
        obs.counter("traffic.ingest.bytes").get() - bytes_before >= bytes * configs,
        "byte counter did not cover the streamed batches"
    );
    assert!(
        acc.saturation_permille().unwrap_or(0) > 0,
        "ingest never populated the sketch"
    );
}
