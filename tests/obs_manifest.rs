//! Observability integration suite: the JSONL run manifest must (a) be
//! schema-stable and self-consistent on a real campaign, (b) contain no
//! wall-clock fields in deterministic mode, and (c) never perturb the
//! campaign itself — results with a recorder attached are byte-identical
//! across 1, 2, and 8 worker threads.

use trackdown_suite::core::localize::{
    run_campaign_parallel_recorded, run_campaign_recorded, run_campaign_sharded_recorded,
};
use trackdown_suite::obs::{
    validate_manifest, write_manifest, CampaignRecorder, EpochMode, RunInfo,
};
use trackdown_suite::prelude::*;

fn scenario(seed: u64) -> (GeneratedTopology, OriginAs, Vec<AnnouncementConfig>) {
    let world = generate(&TopologyConfig::small(seed));
    let origin = OriginAs::peering_style(&world, 4);
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 2,
            max_poison_configs: Some(12),
        },
    );
    (world, origin, schedule)
}

fn run_info(name: &str, campaign: &Campaign, deterministic: bool) -> RunInfo {
    RunInfo {
        name: name.into(),
        seed: 7,
        policy_seed: 0,
        scale: "small".into(),
        mode: "warm".into(),
        threads: campaign.stats.threads,
        shards: campaign.stats.shards,
        trace: trackdown_suite::obs::trace_config_label(),
        schedule_len: campaign.configs.len(),
        deterministic,
    }
}

/// A warm sequential campaign produces one epoch record per configuration
/// and the rendered manifest passes the checked-in validator.
#[test]
fn warm_campaign_manifest_validates() {
    let (world, origin, schedule) = scenario(7);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let recorder = CampaignRecorder::new(false);
    let campaign = run_campaign_recorded(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
        CampaignMode::Warm,
        Some(&recorder),
    );
    let records = recorder.take_records();
    assert_eq!(records.len(), schedule.len(), "one record per epoch");
    // Epoch 0 must be a cold start; with the default violator population
    // the session cold-starts internally, so every deploy records Cold.
    assert_eq!(records[0].mode, EpochMode::Cold);
    let memo_hits = records.iter().filter(|r| r.mode == EpochMode::Memo).count();
    assert_eq!(memo_hits, campaign.stats.memo_hits, "memo epochs == stats");

    let text = trackdown_suite::obs::render_manifest(
        &run_info("obs_manifest", &campaign, false),
        &records,
        Some(&trackdown_suite::obs::global().snapshot()),
    );
    let summary = validate_manifest(&text).expect("manifest validates");
    assert_eq!(summary.epochs, schedule.len());
    assert_eq!(summary.schedule_len, schedule.len());
    assert_eq!(summary.memo, memo_hits);
    assert!(!summary.deterministic);
}

/// A clean (violator-free) engine actually reuses epochs: the manifest
/// must label the reused deployments Warm.
#[test]
fn clean_engine_records_warm_epochs() {
    let (world, origin, schedule) = scenario(9);
    let cfg = EngineConfig {
        policy: PolicyConfig {
            violator_fraction: 0.0,
            ..PolicyConfig::default()
        },
        ..EngineConfig::default()
    };
    let engine = BgpEngine::new(&world.topology, &cfg);
    let recorder = CampaignRecorder::new(true);
    let _ = run_campaign_recorded(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
        CampaignMode::Warm,
        Some(&recorder),
    );
    let records = recorder.take_records();
    let warm = records.iter().filter(|r| r.mode == EpochMode::Warm).count();
    assert!(warm > 0, "clean engine should warm-start some epochs");
    // Deterministic recorder never reads the clock.
    assert!(records.iter().all(|r| r.wall_us.is_none()));
}

/// A delta campaign on a clean engine records Delta epochs that validate
/// against the schema-3 vocabulary and carry per-epoch disturbance.
#[test]
fn delta_campaign_manifest_validates() {
    let (world, origin, schedule) = scenario(15);
    let cfg = EngineConfig {
        policy: PolicyConfig {
            violator_fraction: 0.0,
            ..PolicyConfig::default()
        },
        ..EngineConfig::default()
    };
    let engine = BgpEngine::new(&world.topology, &cfg);
    let recorder = CampaignRecorder::new(true);
    let campaign = run_campaign_recorded(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
        CampaignMode::Delta,
        Some(&recorder),
    );
    let records = recorder.take_records();
    let delta = records
        .iter()
        .filter(|r| r.mode == EpochMode::Delta)
        .count();
    assert!(delta > 0, "clean engine should delta-start most epochs");
    // The campaign's disturbance total is the sum over deployed epochs.
    assert_eq!(
        records.iter().map(|r| r.routes_disturbed).sum::<usize>(),
        campaign.stats.routes_disturbed
    );
    let text = trackdown_suite::obs::render_manifest(
        &run_info("obs_manifest", &campaign, true),
        &records,
        None,
    );
    assert!(text.contains("\"mode\":\"delta\""));
    let summary = validate_manifest(&text).expect("delta manifest validates");
    assert_eq!(summary.delta, delta);
    assert_eq!(summary.epochs, schedule.len());
}

/// Deterministic manifests are byte-identical across runs and contain no
/// wall-clock fields (the golden the CI job leans on).
#[test]
fn deterministic_manifest_is_reproducible() {
    let render = || {
        let (world, origin, schedule) = scenario(11);
        let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
        let recorder = CampaignRecorder::new(true);
        let campaign = run_campaign_recorded(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
            CampaignMode::Warm,
            Some(&recorder),
        );
        // Metrics snapshots accumulate across tests in one process, so the
        // reproducibility golden covers the run + epoch lines only.
        trackdown_suite::obs::render_manifest(
            &run_info("obs_manifest", &campaign, true),
            &recorder.take_records(),
            None,
        )
    };
    let a = render();
    let b = render();
    assert_eq!(a, b, "deterministic manifests must be byte-identical");
    assert!(
        !a.contains("wall_us"),
        "no wall clock in deterministic mode"
    );
    validate_manifest(&a).expect("deterministic manifest validates");
}

/// `write_manifest` + `validate_manifest` round-trip through a file, the
/// way the CLI's `--metrics-out` / `validate-manifest` pair uses them.
#[test]
fn manifest_roundtrips_through_file() {
    let (world, origin, schedule) = scenario(13);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let recorder = CampaignRecorder::new(true);
    let campaign = run_campaign_parallel_recorded(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        200,
        4,
        CampaignMode::Warm,
        Some(&recorder),
    );
    let path = std::env::temp_dir().join("trackdown-obs-roundtrip.jsonl");
    write_manifest(
        path.to_str().expect("utf-8 temp path"),
        &run_info("obs_manifest", &campaign, true),
        &recorder.take_records(),
        Some(&trackdown_suite::obs::global().snapshot().without_time()),
    )
    .expect("write manifest");
    let text = std::fs::read_to_string(&path).expect("read back");
    let summary = validate_manifest(&text).expect("validates");
    assert_eq!(summary.epochs, schedule.len());
    let _ = std::fs::remove_file(path);
}

/// The determinism fix the issue calls out: attaching a recorder must not
/// perturb parallel campaign results, and those results stay identical
/// across 1, 2, and 8 threads. Epoch *records* may differ (each worker
/// warm-starts its own chunk); campaign outputs may not.
#[test]
fn recorder_does_not_perturb_thread_invariance() {
    let (world, origin, schedule) = scenario(17);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let run = |threads: usize| {
        let recorder = CampaignRecorder::new(true);
        let campaign = run_campaign_parallel_recorded(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            200,
            threads,
            CampaignMode::Warm,
            Some(&recorder),
        );
        let records = recorder.take_records();
        assert_eq!(records.len(), schedule.len(), "{threads} threads");
        // Records come back sorted by epoch regardless of worker timing.
        assert!(records.windows(2).all(|w| w[0].epoch < w[1].epoch));
        campaign
    };
    let one = run(1);
    let two = run(2);
    let eight = run(8);
    for other in [&two, &eight] {
        assert_eq!(one.configs, other.configs);
        assert_eq!(one.catchments, other.catchments);
        assert_eq!(one.tracked, other.tracked);
        assert_eq!(one.records, other.records);
    }
    // And against the bare (un-instrumented) executor.
    let bare = run_campaign_parallel_recorded(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        200,
        2,
        CampaignMode::Warm,
        None,
    );
    assert_eq!(one.catchments, bare.catchments);
    assert_eq!(one.records, bare.records);
}

/// Sharded catchment extraction must be invisible in deterministic
/// manifests: rendered run + epoch lines are byte-identical across
/// `--shards 1`, `2`, and `8` at a fixed thread count. The shard count
/// only surfaces in non-deterministic headers (schema 2), so two runs
/// that differ solely in sharding produce the same golden bytes.
#[test]
fn deterministic_manifest_is_shard_invariant() {
    let (world, origin, schedule) = scenario(19);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let render = |shards: usize| {
        let recorder = CampaignRecorder::new(true);
        let campaign = run_campaign_sharded_recorded(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            200,
            3,
            shards,
            CampaignMode::Warm,
            Some(&recorder),
        );
        assert_eq!(
            campaign.stats.shards,
            ShardPlan::new(world.topology.num_ases(), shards).num_shards()
        );
        let records = recorder.take_records();
        assert_eq!(records.len(), schedule.len(), "{shards} shards");
        trackdown_suite::obs::render_manifest(
            &run_info("obs_manifest", &campaign, true),
            &records,
            None,
        )
    };
    let one = render(1);
    let two = render(2);
    let eight = render(8);
    assert_eq!(one, two, "shards=2 manifest diverged from shards=1");
    assert_eq!(one, eight, "shards=8 manifest diverged from shards=1");
    validate_manifest(&one).expect("shard-invariant manifest validates");
    // Non-deterministic headers *do* carry the shard count, so operators
    // can see the partitioning that produced a run.
    let recorder = CampaignRecorder::new(false);
    let campaign = run_campaign_sharded_recorded(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        200,
        3,
        8,
        CampaignMode::Warm,
        Some(&recorder),
    );
    let text = trackdown_suite::obs::render_manifest(
        &run_info("obs_manifest", &campaign, false),
        &recorder.take_records(),
        None,
    );
    let effective = ShardPlan::new(world.topology.num_ases(), 8).num_shards();
    assert!(
        text.contains(&format!("\"shards\":{effective}")),
        "non-det header records the effective shard count"
    );
}
