//! Trace-tree well-formedness suite: structured traces collected over
//! real sharded campaigns must form valid per-thread span forests —
//! unique nonzero ids, parents that contain their children in time on
//! the same thread, per-thread completion ordering — with invariant
//! span counts across 1, 2, and 8 worker threads, and the Chrome
//! exporter must emit balanced begin/end pairs for them.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock};
use trackdown_suite::core::localize::{run_campaign_sharded_mode, CampaignMode, CatchmentSource};
use trackdown_suite::obs::{
    chrome_trace_json, end_trace, start_trace, tracing_enabled, Trace, TraceConfig, TraceEventKind,
};
use trackdown_suite::prelude::*;

/// Tracing is process-global; serialize the tests in this binary.
fn lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn scenario(seed: u64) -> (GeneratedTopology, OriginAs, Vec<AnnouncementConfig>) {
    let world = generate(&TopologyConfig::small(seed));
    let origin = OriginAs::peering_style(&world, 4);
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 1,
            max_poison_configs: Some(8),
        },
    );
    (world, origin, schedule)
}

/// Structural invariants every collected trace must satisfy, regardless
/// of workload or thread count.
fn assert_well_formed(trace: &Trace) {
    let spans: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.kind == TraceEventKind::Span)
        .collect();
    assert!(!spans.is_empty(), "trace has no spans");

    // Unique, nonzero ids; timestamps ordered; threads in range.
    let mut by_id = HashMap::new();
    for e in &spans {
        assert_ne!(e.id, 0, "span id 0 is reserved for thread roots");
        assert!(e.end_us >= e.start_us, "span {} ends before start", e.name);
        assert!(e.thread < trace.threads.len(), "thread index out of range");
        assert!(
            by_id.insert(e.id, *e).is_none(),
            "duplicate span id {}",
            e.id
        );
    }

    // Parent links: a nonzero parent must exist, live on the same
    // thread, and contain the child's interval.
    for e in &spans {
        if e.parent == 0 {
            continue;
        }
        let p = by_id
            .get(&e.parent)
            .unwrap_or_else(|| panic!("span {} has unknown parent {}", e.name, e.parent));
        assert_eq!(p.thread, e.thread, "parent of {} on another thread", e.name);
        assert!(
            p.start_us <= e.start_us && e.end_us <= p.end_us,
            "parent {} [{},{}] does not contain child {} [{},{}]",
            p.name,
            p.start_us,
            p.end_us,
            e.name,
            e.start_us,
            e.end_us
        );
    }

    // Per-thread completion order: buffers record spans as they close,
    // so end timestamps are non-decreasing within a thread.
    let mut last_end: HashMap<usize, u64> = HashMap::new();
    for e in &spans {
        let prev = last_end.entry(e.thread).or_insert(0);
        assert!(
            e.end_us >= *prev,
            "thread {} events out of completion order at {}",
            e.thread,
            e.name
        );
        *prev = e.end_us;
    }

    // Every span fits inside the collection window.
    for e in &spans {
        assert!(e.end_us <= trace.duration_us, "span outlives the trace");
    }
}

fn count(trace: &Trace, name: &str) -> usize {
    trace
        .events
        .iter()
        .filter(|e| e.kind == TraceEventKind::Span && e.name == name)
        .count()
}

/// The tentpole invariant: the same campaign traced at 1, 2, and 8
/// worker threads yields well-formed trees whose per-phase span counts
/// are fixed by the workload, not the executor shape.
#[test]
fn sharded_campaign_traces_are_well_formed_across_thread_counts() {
    let _guard = lock();
    let (world, origin, schedule) = scenario(7);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    const SHARDS: usize = 4;
    for threads in [1usize, 2, 8] {
        start_trace(TraceConfig::default());
        assert!(tracing_enabled());
        let campaign = run_campaign_sharded_mode(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            200,
            threads,
            SHARDS,
            CampaignMode::Warm,
        );
        let trace = end_trace().expect("trace collected");
        assert!(!tracing_enabled(), "tracing must disarm at end_trace");
        assert_well_formed(&trace);

        // Workload-invariant counts: one campaign root; one produce span
        // per propagated epoch; extraction tasks (local + stolen) cover
        // every (epoch, shard) pair exactly once.
        assert_eq!(count(&trace, "campaign.run"), 1, "{threads} threads");
        assert_eq!(
            count(&trace, "worker.produce"),
            campaign.stats.propagations,
            "{threads} threads"
        );
        assert_eq!(
            count(&trace, "worker.extract") + count(&trace, "worker.steal"),
            campaign.stats.propagations * campaign.stats.shards,
            "{threads} threads"
        );
        // The deploy work under each produce span is a child of it.
        let produce_ids: Vec<u64> = trace
            .events
            .iter()
            .filter(|e| e.name == "worker.produce")
            .map(|e| e.id)
            .collect();
        let deploys_under_produce = trace
            .events
            .iter()
            .filter(|e| e.name == "bgp.deploy" && produce_ids.contains(&e.parent))
            .count();
        assert_eq!(
            deploys_under_produce, campaign.stats.propagations,
            "{threads} threads: every epoch deploy nests under its produce span"
        );

        // The exporter accepts the real trace: valid JSON with balanced
        // B/E events (checked structurally by the obs unit test; here we
        // just require one B and one E per span).
        let json = chrome_trace_json(&trace);
        let spans = trace
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Span)
            .count();
        assert_eq!(json.matches("\"ph\":\"B\"").count(), spans);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), spans);
    }
}

/// After `end_trace` the span layer is inert again: a campaign run with
/// tracing off contributes nothing to a subsequent trace.
#[test]
fn spans_outside_a_trace_window_are_dropped() {
    let _guard = lock();
    let (world, origin, schedule) = scenario(9);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let run = || {
        run_campaign_sharded_mode(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            200,
            2,
            2,
            CampaignMode::Warm,
        )
    };
    // Untraced run: no window, nothing recorded anywhere.
    assert!(end_trace().is_none(), "no trace armed yet");
    let _ = run();
    // Trace only the second run; counts must match a single campaign.
    start_trace(TraceConfig::default());
    let campaign = run();
    let trace = end_trace().expect("trace collected");
    assert_eq!(count(&trace, "campaign.run"), 1);
    assert_eq!(count(&trace, "worker.produce"), campaign.stats.propagations);
    // And a third, untraced run leaves no residue to drain.
    let _ = run();
    assert!(end_trace().is_none(), "tracing stayed off");
}
