//! Shape-level assertions mirroring the paper's headline evaluation
//! claims (who wins, in which direction), at a test-friendly scale.

use std::collections::BTreeSet;
use trackdown_suite::core::footprint::footprint_clustering;
use trackdown_suite::core::schedule::{
    greedy_schedule, mean_size_objective, random_schedule_stats,
};
use trackdown_suite::core::Phase;
use trackdown_suite::prelude::*;
use trackdown_suite::traffic::cumulative_volume_by_cluster_size;

fn medium_campaign(seed: u64) -> (GeneratedTopology, OriginAs, Campaign) {
    let world = generate(&TopologyConfig::medium(seed));
    let origin = OriginAs::peering_style(&world, 5);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 2,
            max_poison_configs: Some(40),
        },
    );
    let campaign = run_campaign(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
    );
    (world, origin, campaign)
}

/// Figure 3/4 shape: every phase reduces the mean cluster size, and the
/// final distribution is dominated by small clusters.
#[test]
fn phases_monotonically_improve_localization() {
    let (_, _, campaign) = medium_campaign(10);
    let boundary = |phase: Phase| {
        campaign
            .configs
            .iter()
            .rposition(|c| c.phase == phase)
            .map(|i| campaign.records[i].mean_cluster_size)
            .expect("phase present")
    };
    let after_loc = boundary(Phase::Location);
    let after_pre = boundary(Phase::Prepend);
    let after_poi = boundary(Phase::Poison);
    assert!(after_pre < after_loc, "{after_pre} !< {after_loc}");
    assert!(after_poi <= after_pre, "{after_poi} !<= {after_pre}");
    // Most clusters are small: the majority of clusters have <= 2 members.
    let sizes = campaign.clustering.sizes();
    let small = sizes.iter().filter(|&&s| s <= 2).count();
    assert!(
        small * 2 > sizes.len(),
        "small clusters are not the majority"
    );
}

/// Figure 5/6 shape: fewer locations ⇒ larger clusters (pointwise over
/// every removal subset).
#[test]
fn smaller_footprints_localize_worse() {
    let (_, origin, campaign) = medium_campaign(11);
    let n = origin.num_links();
    let full_keep: BTreeSet<LinkId> = (0..n as u8).map(LinkId).collect();
    let full = footprint_clustering(
        &campaign.configs,
        &campaign.catchments,
        &campaign.tracked,
        &full_keep,
    );
    for removed in 1..=2usize {
        for keep in trackdown_suite::core::footprint::footprints_removing(n, removed) {
            let sub = footprint_clustering(
                &campaign.configs,
                &campaign.catchments,
                &campaign.tracked,
                &keep,
            );
            assert!(
                sub.mean_size() >= full.mean_size() - 1e-9,
                "removing {removed} links improved clustering?"
            );
        }
    }
}

/// Figure 8 shape: the greedy schedule dominates the random median at
/// every prefix length.
#[test]
fn greedy_schedule_beats_random() {
    let (_, _, campaign) = medium_campaign(12);
    let steps = 12usize;
    let rnd = random_schedule_stats(&campaign.catchments, &campaign.tracked, 60, 7);
    let (_, greedy) = greedy_schedule(
        &campaign.catchments,
        &campaign.tracked,
        steps,
        mean_size_objective,
    );
    for (k, g) in greedy.iter().enumerate() {
        assert!(
            *g <= rnd.median[k] + 1e-9,
            "step {k}: greedy {g} > random median {}",
            rnd.median[k]
        );
    }
    // And the gap is material early on (the paper: 3.5 vs 7.8 at k=10).
    assert!(
        greedy[9] * 1.3 < rnd.median[9],
        "no meaningful speedup: greedy {} vs random {}",
        greedy[9],
        rnd.median[9]
    );
}

/// Figure 9 shape: most ASes follow best-relationship, and the
/// relationship+shortest criterion is a subset of it.
#[test]
fn compliance_fractions_are_high_and_ordered() {
    let world = generate(&TopologyConfig::medium(13));
    let origin = OriginAs::peering_style(&world, 5);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 1,
            max_poison_configs: Some(5),
        },
    );
    for cfg in schedule.iter().take(10) {
        let out = engine
            .propagate_config_detailed(
                &origin,
                &cfg.to_link_announcements(),
                200,
                SnapshotDetail::Full,
            )
            .unwrap();
        let s = trackdown_suite::core::compliance::config_compliance(&out);
        assert!(s.decided > 0);
        assert!(s.both <= s.best_relationship + 1e-12);
        assert!(
            s.best_relationship > 0.8,
            "unexpectedly low compliance {}",
            s.best_relationship
        );
    }
}

/// Figure 10 shape: most spoofed volume originates from small clusters,
/// and the single-source curve saturates earliest.
#[test]
fn spoofed_volume_concentrates_in_small_clusters() {
    let (world, _, campaign) = medium_campaign(14);
    let clusters = campaign.clustering.clusters();
    let frac_at = |placement: SourcePlacement, seed: u64, size: usize| -> f64 {
        let mut acc = 0.0;
        let reps = 50;
        for r in 0..reps {
            let placed = place_sources(
                world.topology.num_ases(),
                &campaign.tracked,
                placement,
                seed + r,
            );
            let vols = placed.volume_per_as(1_000);
            let curve = cumulative_volume_by_cluster_size(&clusters, &vols);
            let mut last = 0.0;
            for &(s, f) in &curve {
                if s > size {
                    break;
                }
                last = f;
            }
            acc += last;
        }
        acc / reps as f64
    };
    for placement in [
        SourcePlacement::Uniform { total: 50 },
        SourcePlacement::Single,
    ] {
        // A material share of volume sits in small clusters, and the
        // cumulative curve is monotone in the size threshold.
        let at4 = frac_at(placement, 1000, 4);
        let at10 = frac_at(placement, 1000, 10);
        assert!(
            at4 > 0.25,
            "{placement:?}: too little volume in clusters <=4 ASes ({at4})"
        );
        assert!(at10 >= at4, "cumulative curve must be monotone");
    }
    // Sources are sampled from the tracked set uniformly in both cases, but
    // a single source is *either* in a small cluster or not: averaged over
    // placements, its curve tracks the AS-weighted cluster distribution
    // just like uniform — so only weak ordering is asserted.
    let single4 = frac_at(SourcePlacement::Single, 5000, 4);
    assert!(
        single4 > 0.25,
        "single-source volume concentration ({single4})"
    );
}
