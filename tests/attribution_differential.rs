//! Differential suite for the indexed attribution plane: on every
//! proptest-generated campaign — Warm and Cold executors, 1/2/8 worker
//! threads, planted attacker volumes — the incremental implementations
//! (`rank_suspects`, `estimate_cluster_volumes`, `match_fraction_scores`,
//! `cluster_of`, `cluster_size_of`) must produce byte-identical output to
//! the scan-based references they replaced (`*_rescan` / `*_scan`).
//!
//! The rescans rebuild everything from the raw catchments each call, so
//! any divergence is a bug in the index maintenance — a stale split-log
//! entry, a parent chain walked wrong, a CSR offset off by one — not a
//! modeling difference. This mirrors the role `warm_vs_cold.rs` plays for
//! the executor and `path_arena_differential.rs` for the routing core.

use proptest::prelude::*;
use trackdown_suite::core::localize::{
    match_fraction_scores, match_fraction_scores_rescan, run_campaign_parallel_mode,
};
use trackdown_suite::prelude::*;

fn engine_config(clean: bool) -> EngineConfig {
    if clean {
        EngineConfig {
            policy: PolicyConfig {
                violator_fraction: 0.0,
                ..PolicyConfig::default()
            },
            ..EngineConfig::default()
        }
    } else {
        EngineConfig::default()
    }
}

fn scenario(
    seed: u64,
    pops: usize,
    max_removals: usize,
    max_poison: usize,
) -> (GeneratedTopology, OriginAs, Vec<AnnouncementConfig>) {
    let world = generate(&TopologyConfig::small(seed));
    let origin = OriginAs::peering_style(&world, pops);
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals,
            max_poison_configs: Some(max_poison),
        },
    );
    (world, origin, schedule)
}

/// Spread `n` attackers across the tracked set at deterministic,
/// seed-dependent offsets and return the per-AS volume vector.
fn plant_attackers(
    world: &GeneratedTopology,
    campaign: &Campaign,
    n: usize,
    salt: u64,
) -> Vec<u64> {
    let mut volume = vec![0u64; world.topology.num_ases()];
    if campaign.tracked.is_empty() {
        return volume;
    }
    for k in 0..n {
        let pos = ((salt as usize).wrapping_mul(2654435761) + k * 7919) % campaign.tracked.len();
        volume[campaign.tracked[pos].us()] = 100_000 * (k as u64 + 1);
    }
    volume
}

/// The full equality obligation between the indexed attribution plane and
/// the from-scratch rescans, on one campaign + one volume matrix.
macro_rules! assert_attribution_matches_rescan {
    ($campaign:expr, $vols:expr) => {
        prop_assert_eq!(
            rank_suspects(&$campaign, &$vols),
            rank_suspects_rescan(&$campaign, &$vols)
        );
        prop_assert_eq!(
            estimate_cluster_volumes(&$campaign, &$vols, 10),
            estimate_cluster_volumes_rescan(&$campaign, &$vols, 10)
        );
        prop_assert_eq!(
            match_fraction_scores(&$campaign, &$vols),
            match_fraction_scores_rescan(&$campaign, &$vols)
        );
        // Per-source lookups, tracked and untracked alike.
        let probe_beyond = AsIndex($campaign.tracked.iter().map(|s| s.0).max().unwrap_or(0) + 1);
        for &s in $campaign
            .tracked
            .iter()
            .chain(std::iter::once(&probe_beyond))
        {
            prop_assert_eq!(
                $campaign.clustering.cluster_of(s),
                $campaign.clustering.cluster_of_scan(s)
            );
            prop_assert_eq!(
                $campaign.clustering.cluster_size_of(s),
                $campaign.clustering.cluster_size_of_scan(s)
            );
        }
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Sequential Warm and Cold campaigns: the indexed plane must match
    // the rescans on both, and the two campaigns' suspect lists must
    // agree with each other (the executor equivalence the warm_vs_cold
    // suite proves, restated at the attribution layer).
    #[test]
    fn indexed_attribution_matches_rescan_warm_and_cold(
        seed in 0u64..500,
        pops in 3usize..6,
        max_poison in 4usize..12,
        attackers in 1usize..4,
        clean in 0u8..2,
    ) {
        let (world, origin, schedule) = scenario(seed, pops, 1, max_poison);
        let engine = BgpEngine::new(&world.topology, &engine_config(clean == 1));
        for mode in [CampaignMode::Warm, CampaignMode::Cold] {
            let campaign = run_campaign_mode(
                &engine, &origin, &schedule, CatchmentSource::ControlPlane,
                None, 200, mode);
            let volume = plant_attackers(&world, &campaign, attackers, seed);
            let vols = link_volume_matrix(&campaign, &volume);
            prop_assert_eq!(vols.len(), campaign.attribution.num_configs());
            assert_attribution_matches_rescan!(campaign, vols);
        }
    }

    // Parallel campaigns across worker counts: chunked warm sessions
    // reorder work internally, so the refinement history (and thus the
    // attribution index) must still come out identical to the rescans —
    // and identical across thread counts.
    #[test]
    fn indexed_attribution_matches_rescan_across_threads(
        seed in 0u64..500,
        max_poison in 4usize..10,
        attackers in 1usize..4,
        clean in 0u8..2,
    ) {
        let (world, origin, schedule) = scenario(seed, 4, 1, max_poison);
        let engine = BgpEngine::new(&world.topology, &engine_config(clean == 1));
        let mut suspect_golden = None;
        for threads in [1usize, 2, 8] {
            let campaign = run_campaign_parallel_mode(
                &engine, &origin, &schedule, CatchmentSource::ControlPlane,
                200, threads, CampaignMode::Warm);
            let volume = plant_attackers(&world, &campaign, attackers, seed);
            let vols = link_volume_matrix(&campaign, &volume);
            assert_attribution_matches_rescan!(campaign, vols);
            let suspects = rank_suspects(&campaign, &vols);
            match &suspect_golden {
                None => suspect_golden = Some(suspects),
                Some(golden) => prop_assert_eq!(golden, &suspects),
            }
        }
    }

    // Measured campaigns impute missing observations before clustering;
    // the attribution index is built from the *imputed* catchments and
    // must still agree with the rescans over those same catchments.
    #[test]
    fn indexed_attribution_matches_rescan_measured(
        seed in 0u64..200,
        max_poison in 4usize..8,
        attackers in 1usize..3,
    ) {
        let (world, origin, schedule) = scenario(seed, 4, 1, max_poison);
        let engine = BgpEngine::new(&world.topology, &engine_config(false));
        let cones = ConeInfo::compute(&world.topology);
        let plane = MeasurementPlane::new(&world.topology, &cones, &MeasurementConfig::default());
        let campaign = run_campaign_mode(
            &engine, &origin, &schedule, CatchmentSource::Measured,
            Some(&plane), 200, CampaignMode::Warm);
        let volume = plant_attackers(&world, &campaign, attackers, seed);
        let vols = link_volume_matrix(&campaign, &volume);
        assert_attribution_matches_rescan!(campaign, vols);
    }
}

// The structural invariants the proptest equality rides on, pinned on one
// concrete campaign so a failure names the broken piece directly.
#[test]
fn attribution_index_structure_is_consistent() {
    let (world, origin, schedule) = scenario(29, 4, 1, 8);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let campaign = run_campaign(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
    );
    let idx = &campaign.attribution;
    assert_eq!(idx.num_configs(), schedule.len());
    assert_eq!(idx.final_num_clusters(), campaign.clustering.num_clusters());
    assert!(idx.num_links() <= origin.num_links());
    // Each split in the log grows the cluster count by |children| - 1;
    // summed over the campaign that must bridge initial to final count.
    let grown: usize = (0..idx.num_configs())
        .flat_map(|k| idx.split_log(k))
        .map(|s| s.children.len() - 1)
        .sum();
    assert_eq!(1 + grown, campaign.clustering.num_clusters());
    // final_links rows are exactly what a representative-member rescan of
    // the catchments yields.
    let links = idx.final_links();
    for (c, row) in links.iter().enumerate() {
        let rep = campaign.clustering.cluster_members(c as u32)[0];
        for (k, cat) in campaign.catchments.iter().enumerate() {
            assert_eq!(row[k], cat.get(rep), "cluster {c} config {k}");
        }
    }
}
