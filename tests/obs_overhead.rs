//! Overhead guard: with the default no-op configuration (no span sink,
//! no recorder), the instrumentation layer must not slow the campaign
//! pipeline measurably. Run explicitly (CI does, in release mode):
//!
//! ```text
//! cargo test --release --test obs_overhead -- --ignored
//! ```
//!
//! Methodology: the same medium warm campaign is timed with spans
//! disabled and with a [`NullSink`] installed (the worst realistic
//! "instrumentation on" case short of I/O), alternating A/B/A/B and
//! keeping the minimum per arm — minima are robust to scheduler noise
//! where means are not. The threshold is 2% by default
//! (`OBS_OVERHEAD_LIMIT_PCT` overrides it for noisy machines).

use std::sync::Arc;
use std::time::Instant;
use trackdown_suite::core::localize::run_campaign;
use trackdown_suite::obs::{end_trace, set_span_sink, start_trace, NullSink, TraceConfig};
use trackdown_suite::prelude::*;

fn build() -> (GeneratedTopology, OriginAs, Vec<AnnouncementConfig>) {
    let world = generate(&TopologyConfig::medium(7));
    let origin = OriginAs::peering_style(&world, 5);
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 2,
            max_poison_configs: Some(40),
        },
    );
    (world, origin, schedule)
}

#[test]
#[ignore = "timing-sensitive; run in release mode via CI's observability job"]
fn noop_instrumentation_overhead_under_limit() {
    let limit_pct: f64 = std::env::var("OBS_OVERHEAD_LIMIT_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let (world, origin, schedule) = build();
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let run_once = || {
        let t = Instant::now();
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        let dt = t.elapsed();
        assert!(!campaign.records.is_empty());
        dt
    };

    // Warm the caches (page-in, allocator) before measuring anything.
    let _ = run_once();

    let rounds = 5usize;
    let mut best_off = f64::MAX;
    let mut best_on = f64::MAX;
    for _ in 0..rounds {
        set_span_sink(None);
        best_off = best_off.min(run_once().as_secs_f64());
        set_span_sink(Some(Arc::new(NullSink)));
        best_on = best_on.min(run_once().as_secs_f64());
    }
    set_span_sink(None);

    let overhead_pct = (best_on / best_off - 1.0) * 100.0;
    eprintln!(
        "obs overhead: off {:.3}s, on(NullSink) {:.3}s, overhead {:+.2}% (limit {limit_pct}%)",
        best_off, best_on, overhead_pct
    );
    assert!(
        overhead_pct < limit_pct,
        "no-op instrumentation overhead {overhead_pct:.2}% exceeds {limit_pct}%"
    );
}

/// Enabled-tracing overhead bound: a warm campaign run with a full trace
/// collected (timestamps, per-thread buffers, tree assembly at
/// `end_trace`) must stay within 5% of the untraced run. This is the
/// budget that makes `trackdown profile` honest — if collecting the
/// trace distorted the workload, the profile would name the wrong costs.
#[test]
#[ignore = "timing-sensitive; run in release mode via CI's observability job"]
fn enabled_tracing_overhead_under_limit() {
    let limit_pct: f64 = std::env::var("OBS_TRACING_LIMIT_PCT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    let (world, origin, schedule) = build();
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let run_once = || {
        let t = Instant::now();
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        let dt = t.elapsed();
        assert!(!campaign.records.is_empty());
        dt
    };

    let _ = run_once();

    let rounds = 5usize;
    let mut best_off = f64::MAX;
    let mut best_on = f64::MAX;
    for _ in 0..rounds {
        best_off = best_off.min(run_once().as_secs_f64());
        start_trace(TraceConfig::default());
        let traced = run_once().as_secs_f64();
        let trace = end_trace().expect("trace collected");
        assert!(!trace.events.is_empty(), "traced run produced no events");
        best_on = best_on.min(traced);
    }

    let overhead_pct = (best_on / best_off - 1.0) * 100.0;
    eprintln!(
        "tracing overhead: off {:.3}s, on {:.3}s, overhead {:+.2}% (limit {limit_pct}%)",
        best_off, best_on, overhead_pct
    );
    assert!(
        overhead_pct < limit_pct,
        "enabled-tracing overhead {overhead_pct:.2}% exceeds {limit_pct}%"
    );
}
